package gpu

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestV100Spec(t *testing.T) {
	s := V100()
	if s.SMs != 80 {
		t.Errorf("SMs = %d, want 80", s.SMs)
	}
	if s.MemCapacity != 16*units.GB {
		t.Errorf("capacity = %v, want 16GB", s.MemCapacity)
	}
	if s.PeakTensor <= s.PeakFP32 {
		t.Error("tensor peak should exceed FP32 peak")
	}
}

func TestKernelDurationComputeBound(t *testing.T) {
	s := V100()
	c := KernelCost{
		FLOPs:       10 * units.GFLOPs,
		MemBytes:    units.MB, // negligible
		Parallelism: 100 * s.OccupancyHalf,
		Class:       ClassFMA,
	}
	got := s.KernelDuration(c)
	occ := float64(c.Parallelism) / float64(c.Parallelism+s.OccupancyHalf)
	want := s.KernelGap + units.ComputeTime(c.FLOPs, units.FLOPRate(float64(s.PeakFP32)*occ))
	if got != want {
		t.Errorf("duration = %v, want %v", got, want)
	}
}

func TestKernelDurationMemoryBound(t *testing.T) {
	s := V100()
	c := KernelCost{
		FLOPs:       units.MFLOPs, // negligible
		MemBytes:    900 * units.MB,
		Parallelism: 1 << 40, // full occupancy
		Class:       ClassMemory,
	}
	got := s.KernelDuration(c)
	// ~1ms (900MB at ~900GB/s, binary-vs-decimal aside) plus the gap.
	if got < 900*time.Microsecond || got > 1200*time.Microsecond {
		t.Errorf("memory-bound duration = %v, want ~1ms", got)
	}
}

func TestTensorClassFasterThanFMA(t *testing.T) {
	s := V100()
	c := KernelCost{FLOPs: 10 * units.GFLOPs, Parallelism: 1 << 30, Class: ClassTensor}
	f := c
	f.Class = ClassFMA
	if s.KernelDuration(c) >= s.KernelDuration(f) {
		t.Error("tensor kernel should be faster than FMA kernel of equal work")
	}
}

func TestOccupancyPenalizesSmallKernels(t *testing.T) {
	s := V100()
	small := KernelCost{FLOPs: units.GFLOPs, Parallelism: 1024, Class: ClassFMA}
	big := KernelCost{FLOPs: units.GFLOPs, Parallelism: 1 << 30, Class: ClassFMA}
	if s.KernelDuration(small) <= s.KernelDuration(big) {
		t.Error("low-parallelism kernel should run longer")
	}
}

// Property: duration is monotonically non-decreasing in FLOPs.
func TestKernelDurationMonotonicInWork(t *testing.T) {
	s := V100()
	f := func(a, b uint32) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cl := KernelCost{FLOPs: units.FLOPs(lo) * units.KFLOPs, Parallelism: 1 << 20, Class: ClassFMA}
		ch := KernelCost{FLOPs: units.FLOPs(hi) * units.KFLOPs, Parallelism: 1 << 20, Class: ClassFMA}
		return s.KernelDuration(cl) <= s.KernelDuration(ch)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroParallelismIsJustGap(t *testing.T) {
	s := V100()
	c := KernelCost{FLOPs: units.GFLOPs, Parallelism: 0, Class: ClassFMA}
	if got := s.KernelDuration(c); got != s.KernelGap {
		t.Errorf("duration = %v, want gap %v", got, s.KernelGap)
	}
}

func TestEffDiscountsRoof(t *testing.T) {
	s := V100()
	full := KernelCost{FLOPs: 10 * units.GFLOPs, Parallelism: 1 << 30, Class: ClassFMA, Eff: 1}
	half := full
	half.Eff = 0.5
	df, dh := s.KernelDuration(full), s.KernelDuration(half)
	// Half efficiency should roughly double the compute portion.
	if dh <= df {
		t.Errorf("eff=0.5 (%v) should be slower than eff=1 (%v)", dh, df)
	}
}

func TestAchievedRateBelowPeak(t *testing.T) {
	s := V100()
	c := KernelCost{FLOPs: 10 * units.GFLOPs, Parallelism: 1 << 30, Class: ClassFMA}
	if r := s.AchievedRate(c); r <= 0 || r >= s.PeakFP32 {
		t.Errorf("achieved rate %v out of (0, peak)", r)
	}
}

func TestAllocatorBasics(t *testing.T) {
	a := NewAllocator(units.GB)
	if err := a.Alloc("weights", 600*units.MB); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc("features", 600*units.MB); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	if err := a.Alloc("features", 400*units.MB); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 1000*units.MB {
		t.Errorf("used = %v, want 1000MB", a.Used())
	}
	a.Free("weights", 600*units.MB)
	if a.Used() != 400*units.MB {
		t.Errorf("used = %v, want 400MB", a.Used())
	}
	if a.Peak() != 1000*units.MB {
		t.Errorf("peak = %v, want 1000MB", a.Peak())
	}
	if a.Tag("features") != 400*units.MB {
		t.Errorf("tag = %v, want 400MB", a.Tag("features"))
	}
}

func TestAllocatorOverFreePanics(t *testing.T) {
	a := NewAllocator(units.GB)
	if err := a.Alloc("x", units.MB); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("over-free should panic")
		}
	}()
	a.Free("x", 2*units.MB)
}

func TestAllocatorNegative(t *testing.T) {
	a := NewAllocator(units.GB)
	if err := a.Alloc("x", -1); err == nil {
		t.Error("negative alloc should error")
	}
}

func TestAllocatorTagsSorted(t *testing.T) {
	a := NewAllocator(units.GB)
	for _, tag := range []string{"z", "a", "m"} {
		if err := a.Alloc(tag, units.MB); err != nil {
			t.Fatal(err)
		}
	}
	tags := a.Tags()
	if len(tags) != 3 || tags[0].Tag != "a" || tags[1].Tag != "m" || tags[2].Tag != "z" {
		t.Errorf("tags not sorted: %v", tags)
	}
}

func TestDeviceQueuesIndependent(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, 0, V100())
	c := KernelCost{FLOPs: units.GFLOPs, Parallelism: 1 << 30, Class: ClassFMA}
	_, endCompute := d.BookKernel(0, c)
	_, endComm := d.BookCommKernel(0, 10*time.Microsecond)
	if endComm >= endCompute {
		// Comm kernel is shorter and runs on its own queue.
		t.Errorf("comm kernel (%v) should finish before compute kernel (%v)", endComm, endCompute)
	}
	// Compute bookings serialize.
	s2, _ := d.BookKernel(0, c)
	if s2 != endCompute {
		t.Errorf("second kernel start = %v, want %v (FIFO)", s2, endCompute)
	}
}

func TestDeviceBusyAccounting(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, 3, V100())
	c := KernelCost{FLOPs: units.GFLOPs, Parallelism: 1 << 30, Class: ClassFMA}
	_, end := d.BookKernel(0, c)
	if d.ComputeBusy() != end {
		t.Errorf("busy = %v, want %v", d.ComputeBusy(), end)
	}
	if d.ComputeFreeAt() != end {
		t.Errorf("free at = %v, want %v", d.ComputeFreeAt(), end)
	}
	if d.CommFreeAt() != 0 {
		t.Errorf("comm free at = %v, want 0", d.CommFreeAt())
	}
}
