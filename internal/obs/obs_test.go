package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		for _, c := range id {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("id %q is not lowercase hex", id)
			}
		}
		if seen[id] {
			t.Fatalf("id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	tr := NewTrace("abc")
	end := tr.StartSpan("decode")
	time.Sleep(time.Millisecond)
	end()
	base := time.Now()
	tr.AddSpan("simulate", base, base.Add(5*time.Millisecond))

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[0].Name != "decode" || spans[0].Dur <= 0 {
		t.Errorf("decode span = %+v", spans[0])
	}
	if spans[1].Name != "simulate" || spans[1].Dur != 5*time.Millisecond {
		t.Errorf("simulate span = %+v", spans[1])
	}
	if spans[1].Start < spans[0].Start {
		t.Error("spans should be offset from the trace start in order")
	}
}

// Dur must aggregate prefixed instances of a name, so a sweep's
// "cell[i] simulate" spans roll up into one simulate total.
func TestTraceDurSumsPrefixedSpans(t *testing.T) {
	tr := NewTrace("abc")
	base := time.Now()
	tr.AddSpan("simulate", base, base.Add(2*time.Millisecond))
	tr.AddSpan("cell[0] simulate", base, base.Add(3*time.Millisecond))
	tr.AddSpan("cell[1] simulate", base, base.Add(4*time.Millisecond))
	tr.AddSpan("decode", base, base.Add(100*time.Millisecond))
	tr.AddSpan("resimulate", base, base.Add(time.Millisecond)) // suffix but not a word match
	if got, want := tr.Dur("simulate"), 9*time.Millisecond; got != want {
		t.Errorf("Dur(simulate) = %v, want %v", got, want)
	}
	if got := tr.Dur("missing"); got != 0 {
		t.Errorf("Dur(missing) = %v, want 0", got)
	}
}

// A nil *Trace must be a usable no-op recorder, so instrumented code
// never branches on whether tracing is on.
func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.AddSpan("y", time.Now(), time.Now())
	tr.Attach("z", 1)
	if tr.Spans() != nil || tr.Attachments() != nil || tr.Dur("x") != 0 {
		t.Error("nil trace should report nothing")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context returned trace %v", got)
	}
	tr := NewTrace("abc")
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %v, want the stored trace", got)
	}
}

func TestTraceAttachments(t *testing.T) {
	tr := NewTrace("abc")
	tr.Attach("profile", 42)
	tr.Attach("cell[1] profile", "v")
	atts := tr.Attachments()
	if len(atts) != 2 || atts[0].Label != "profile" || atts[0].Value != 42 {
		t.Fatalf("attachments = %+v", atts)
	}
}

func TestStoreEvictsOldestFirst(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 5; i++ {
		s.Put(NewTrace(fmt.Sprintf("id%d", i)))
	}
	if s.Len() != 3 {
		t.Fatalf("store holds %d traces, want 3", s.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := s.Get(fmt.Sprintf("id%d", i)); ok {
			t.Errorf("id%d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := s.Get(fmt.Sprintf("id%d", i)); !ok {
			t.Errorf("id%d should be retained", i)
		}
	}
}

func TestStoreRefreshDoesNotDuplicate(t *testing.T) {
	s := NewStore(2)
	s.Put(NewTrace("a"))
	s.Put(NewTrace("a"))
	s.Put(NewTrace("b"))
	if s.Len() != 2 {
		t.Fatalf("store holds %d traces, want 2", s.Len())
	}
	if _, ok := s.Get("a"); !ok {
		t.Error("refreshed id should still be present")
	}
}

func TestStoreDefaultSize(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < DefaultStoreSize+10; i++ {
		s.Put(NewTrace(fmt.Sprintf("id%d", i)))
	}
	if s.Len() != DefaultStoreSize {
		t.Fatalf("default store holds %d, want %d", s.Len(), DefaultStoreSize)
	}
}

// Concurrent span recording and store traffic under -race: a sweep's
// pool tasks all write into the one request trace.
func TestTraceAndStoreConcurrency(t *testing.T) {
	tr := NewTrace("abc")
	s := NewStore(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				end := tr.StartSpan(fmt.Sprintf("cell[%d] simulate", g))
				end()
				tr.Attach("profile", g)
				_ = tr.Spans()
				_ = tr.Dur("simulate")
				s.Put(NewTrace(fmt.Sprintf("id%d-%d", g, i)))
				s.Get("abc")
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Errorf("recorded %d spans, want 800", got)
	}
}
