// Package obs is the service's request-scoped observability kit: request
// ids, a span recorder carried through context, and a bounded store of
// recent request traces.
//
// The recorder mirrors, at the service layer, what internal/profiler does
// for the simulated hardware: where the profiler answers "where did the
// simulated epoch's time go" (the paper's nvprof breakdowns), obs answers
// "where did this *request's* wall-clock time go" — decode, cache lookup,
// queue wait, simulate, encode. The two meet in the /v1/trace endpoint,
// which renders both on one timeline.
//
// Everything here is stdlib-only and safe for concurrent use. A nil
// *Trace is a valid no-op recorder, so instrumented code paths never need
// to check whether tracing is enabled:
//
//	defer obs.FromContext(ctx).StartSpan("simulate")()
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// idFallback numbers ids when the system randomness source fails (it
// cannot on any platform we run, but an id generator must not).
var idFallback atomic.Uint64

// NewID returns a fresh 16-hex-character request id.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := idFallback.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// Span is one timed step of a request, offset from the trace's start.
type Span struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// Attachment is an arbitrary value a code path hangs on the trace — the
// service attaches each simulated cell's *profiler.Profile so /v1/trace
// can render the inner FP/BP/WU stages next to the service spans.
type Attachment struct {
	Label string
	Value any
}

// Trace records the spans (and attachments) of one request. All methods
// are safe for concurrent use and no-ops on a nil receiver.
type Trace struct {
	ID    string
	Began time.Time

	mu          sync.Mutex
	spans       []Span
	attachments []Attachment
}

// NewTrace starts an empty trace anchored at now.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, Began: time.Now()}
}

// StartSpan begins a named span and returns the function that ends it:
//
//	end := tr.StartSpan("decode")
//	... work ...
//	end()
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.AddSpan(name, start, time.Now()) }
}

// AddSpan records one completed span by its wall-clock endpoints.
func (t *Trace) AddSpan(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.Began), Dur: end.Sub(start)})
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dur sums the durations of spans named name, including prefixed
// instances ("cell[3] simulate" counts toward Dur("simulate")) — the
// per-cell attribution a fanned-out sweep records.
func (t *Trace) Dur(name string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var d time.Duration
	for _, s := range t.spans {
		if s.Name == name || strings.HasSuffix(s.Name, " "+name) {
			d += s.Dur
		}
	}
	return d
}

// Attach hangs a labeled value on the trace.
func (t *Trace) Attach(label string, v any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.attachments = append(t.attachments, Attachment{Label: label, Value: v})
}

// Attachments returns a copy of the attachments in attach order.
func (t *Trace) Attachments() []Attachment {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Attachment(nil), t.attachments...)
}

// ctxKey keys the trace in a context.
type ctxKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil (a valid no-op
// recorder) when the context carries none.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Store retains the most recent traces by request id, evicting the
// oldest once full (FIFO by insertion: a request's trace is complete
// when stored, so recency-of-use promotion would only let a polling
// client pin dead entries).
type Store struct {
	mu    sync.Mutex
	max   int
	order []string
	items map[string]*Trace
}

// DefaultStoreSize bounds a Store built with max <= 0.
const DefaultStoreSize = 256

// NewStore returns a store retaining at most max traces (<= 0: the
// default 256).
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultStoreSize
	}
	return &Store{max: max, items: make(map[string]*Trace, max)}
}

// Put stores a trace under its id, evicting the oldest when full.
// Re-storing an id refreshes the value without duplicating its slot.
func (s *Store) Put(t *Trace) {
	if t == nil || t.ID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[t.ID]; ok {
		s.items[t.ID] = t
		return
	}
	if len(s.order) >= s.max {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.items, oldest)
	}
	s.order = append(s.order, t.ID)
	s.items[t.ID] = t
}

// Get returns the stored trace for an id.
func (s *Store) Get(id string) (*Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.items[id]
	return t, ok
}

// Len reports the number of retained traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}
