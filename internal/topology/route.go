package topology

import (
	"fmt"
)

// Hop is one traversal of a link in a specific direction.
type Hop struct {
	Link *Link
	From NodeID
	To   NodeID
}

// Path is an ordered series of hops from a source to a destination.
// Multi-hop GPU paths are store-and-forward: the DGX-1's NVLink routers
// cannot forward packets, so a 2-hop transfer is two full copies staged
// through the intermediate GPU's memory (paper §V-A, footnote 4). Paths
// whose every intermediate node is a Switch are cut-through instead.
type Path struct {
	Hops []Hop
	// CutThrough marks a path whose intermediate nodes forward in flight
	// (NVSwitch): the transfer occupies all hops concurrently at the
	// bottleneck rate rather than staging per hop.
	CutThrough bool
}

// Src returns the path's source node.
func (p Path) Src() NodeID { return p.Hops[0].From }

// Dst returns the path's destination node.
func (p Path) Dst() NodeID { return p.Hops[len(p.Hops)-1].To }

// MinBW returns the lowest per-direction bandwidth along the path.
func (p Path) MinBW() (bw float64) {
	for i, h := range p.Hops {
		if i == 0 || float64(h.Link.BW) < bw {
			bw = float64(h.Link.BW)
		}
	}
	return bw
}

// String renders the path, e.g. "0 -(NVLink)-> 1 -(NVLink)-> 7".
func (p Path) String() string {
	if len(p.Hops) == 0 {
		return "<empty path>"
	}
	s := fmt.Sprintf("%d", p.Src())
	for _, h := range p.Hops {
		s += fmt.Sprintf(" -(%s)-> %d", h.Link.Type, h.To)
	}
	return s
}

// RoutePolicy selects how GPU-to-GPU traffic is routed when no direct
// NVLink exists.
type RoutePolicy int

// Routing policies.
const (
	// RouteStagedNVLink relays through one intermediate GPU over NVLink
	// when possible (what MXNet's multi-stage transfer does), falling back
	// to PCIe through the host CPUs otherwise.
	RouteStagedNVLink RoutePolicy = iota
	// RoutePCIeFallback never stages through a GPU: traffic between GPUs
	// without a direct NVLink goes DtoH + HtoD over PCIe (and QPI when the
	// GPUs hang off different sockets). This is the naive CUDA behaviour
	// the paper contrasts against.
	RoutePCIeFallback
)

// Route computes the path from src to dst under the policy. src and dst
// must be distinct GPUs.
func (t *Topology) Route(src, dst NodeID, policy RoutePolicy) (Path, error) {
	if src == dst {
		return Path{}, fmt.Errorf("topology: route from node %d to itself", src)
	}
	if l := t.DirectLink(src, dst, NVLink); l != nil {
		return Path{Hops: []Hop{{Link: l, From: src, To: dst}}}, nil
	}
	if p, ok := t.switchPath(src, dst); ok {
		return p, nil
	}
	if policy == RouteStagedNVLink {
		if p, ok := t.stagedNVLink(src, dst); ok {
			return p, nil
		}
	}
	return t.pciePath(src, dst)
}

// switchPath relays through a cut-through switch when both endpoints hang
// off one.
func (t *Topology) switchPath(src, dst NodeID) (Path, bool) {
	for _, l1 := range t.adj[src] {
		if l1.Type != NVLink {
			continue
		}
		mid := l1.Other(src)
		n, err := t.Node(mid)
		if err != nil || n.Kind != Switch {
			continue
		}
		l2 := t.DirectLink(mid, dst, NVLink)
		if l2 == nil {
			continue
		}
		return Path{
			Hops: []Hop{
				{Link: l1, From: src, To: mid},
				{Link: l2, From: mid, To: dst},
			},
			CutThrough: true,
		}, true
	}
	return Path{}, false
}

// stagedNVLink finds the best single-intermediate NVLink relay: the
// intermediate GPU maximizing the bottleneck bandwidth, ties broken by
// lowest node ID for determinism.
func (t *Topology) stagedNVLink(src, dst NodeID) (Path, bool) {
	var (
		best    Path
		bestBW  float64
		found   bool
		viaBest NodeID
	)
	for _, l1 := range t.adj[src] {
		if l1.Type != NVLink {
			continue
		}
		mid := l1.Other(src)
		if n, err := t.Node(mid); err != nil || n.Kind != GPU {
			continue
		}
		l2 := t.DirectLink(mid, dst, NVLink)
		if l2 == nil {
			continue
		}
		p := Path{Hops: []Hop{
			{Link: l1, From: src, To: mid},
			{Link: l2, From: mid, To: dst},
		}}
		bw := p.MinBW()
		if !found || bw > bestBW || (bw == bestBW && mid < viaBest) {
			best, bestBW, viaBest, found = p, bw, mid, true
		}
	}
	return best, found
}

// pciePath builds the host-routed path: GPU -> host CPU [-> other CPU] ->
// GPU over PCIe (and QPI across sockets).
func (t *Topology) pciePath(src, dst NodeID) (Path, error) {
	srcCPU, err := t.HostCPU(src)
	if err != nil {
		return Path{}, err
	}
	dstCPU, err := t.HostCPU(dst)
	if err != nil {
		return Path{}, err
	}
	up := t.DirectLink(src, srcCPU, PCIe)
	if up == nil {
		return Path{}, fmt.Errorf("topology: GPU %d has no PCIe link to CPU %d", src, srcCPU)
	}
	down := t.DirectLink(dst, dstCPU, PCIe)
	if down == nil {
		return Path{}, fmt.Errorf("topology: GPU %d has no PCIe link to CPU %d", dst, dstCPU)
	}
	hops := []Hop{{Link: up, From: src, To: srcCPU}}
	if srcCPU != dstCPU {
		x := t.DirectLink(srcCPU, dstCPU, QPI)
		if x == nil {
			return Path{}, fmt.Errorf("topology: no QPI link between CPU %d and CPU %d", srcCPU, dstCPU)
		}
		hops = append(hops, Hop{Link: x, From: srcCPU, To: dstCPU})
	}
	hops = append(hops, Hop{Link: down, From: dstCPU, To: dst})
	return Path{Hops: hops}, nil
}

// HopCount returns the number of hops between two GPUs under the policy.
func (t *Topology) HopCount(src, dst NodeID, policy RoutePolicy) (int, error) {
	if src == dst {
		return 0, nil
	}
	p, err := t.Route(src, dst, policy)
	if err != nil {
		return 0, err
	}
	return len(p.Hops), nil
}
