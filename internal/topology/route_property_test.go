package topology

import "testing"

// Path invariants that must hold for every GPU pair under every policy on
// every topology variant: hops connect end to end, the path starts and
// ends at the requested nodes, no node repeats, and NVLink-policy paths
// never exceed two hops when any NVLink exists.
func TestRouteInvariantsAcrossVariants(t *testing.T) {
	variants := map[string]*Topology{
		"dgx1":      DGX1(),
		"scaled2x":  DGX1Scaled(2),
		"pcie-only": DGX1PCIeOnly(),
		"degraded":  DGX1Degraded([2]NodeID{0, 1}, [2]NodeID{3, 5}),
	}
	for name, top := range variants {
		if err := top.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gpus := top.GPUs()
		for _, policy := range []RoutePolicy{RouteStagedNVLink, RoutePCIeFallback} {
			for _, a := range gpus {
				for _, b := range gpus {
					if a == b {
						continue
					}
					p, err := top.Route(a, b, policy)
					if err != nil {
						t.Fatalf("%s policy %d: route %d->%d: %v", name, policy, a, b, err)
					}
					if p.Src() != a || p.Dst() != b {
						t.Fatalf("%s: path endpoints %d->%d for request %d->%d", name, p.Src(), p.Dst(), a, b)
					}
					seen := map[NodeID]bool{a: true}
					at := a
					for _, h := range p.Hops {
						if h.From != at {
							t.Fatalf("%s: disconnected path %v", name, p)
						}
						if h.Link.Other(h.From) != h.To {
							t.Fatalf("%s: hop link does not connect %d->%d", name, h.From, h.To)
						}
						if seen[h.To] {
							t.Fatalf("%s: path revisits node %d: %v", name, h.To, p)
						}
						seen[h.To] = true
						at = h.To
					}
					if p.MinBW() <= 0 {
						t.Fatalf("%s: non-positive bottleneck on %v", name, p)
					}
					if len(p.Hops) > 3 {
						t.Fatalf("%s: path too long: %v", name, p)
					}
				}
			}
		}
	}
}

// The degraded builder removes exactly the requested links and nothing
// else.
func TestDegradedRemovesOnlyRequested(t *testing.T) {
	full := DGX1()
	deg := DGX1Degraded([2]NodeID{0, 1})
	if deg.DirectLink(0, 1, NVLink) != nil {
		t.Error("failed link still present")
	}
	fullNV, degNV := 0, 0
	for _, l := range full.Links() {
		if l.Type == NVLink {
			fullNV++
		}
	}
	for _, l := range deg.Links() {
		if l.Type == NVLink {
			degNV++
		}
	}
	if degNV != fullNV-1 {
		t.Errorf("degraded NVLink count %d, want %d", degNV, fullNV-1)
	}
	// PCIe/QPI untouched.
	if len(deg.Links())-degNV != len(full.Links())-fullNV {
		t.Error("degradation touched PCIe/QPI links")
	}
}

func TestScaledBandwidth(t *testing.T) {
	base := DGX1().DirectLink(0, 3, NVLink).BW
	twice := DGX1Scaled(2).DirectLink(0, 3, NVLink).BW
	if twice != 2*base {
		t.Errorf("2x scale: %v vs base %v", twice, base)
	}
}
