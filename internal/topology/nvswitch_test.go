package topology

import (
	"testing"

	"repro/internal/units"
)

// Every NVSwitch-generation builder must validate and deliver its
// machine's uniform per-GPU switch bandwidth.
func TestNVSwitchGenerations(t *testing.T) {
	cases := []struct {
		name string
		top  *Topology
		gpus int
		bw   units.Bandwidth
	}{
		{"dgx2", DGX2(), 16, 150 * units.GBPerSec},
		{"dgx-a100", DGXA100(), 8, 300 * units.GBPerSec},
		{"dgx-h100", DGXH100(), 8, 450 * units.GBPerSec},
	}
	for _, c := range cases {
		if err := c.top.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got := len(c.top.GPUs()); got != c.gpus {
			t.Errorf("%s: %d GPUs, want %d", c.name, got, c.gpus)
			continue
		}
		m, err := c.top.BandwidthMatrix(RouteStagedNVLink)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		for i := range m {
			for j := range m {
				if i != j && m[i][j] != c.bw {
					t.Errorf("%s: pair %d-%d bandwidth %v, want uniform %v", c.name, i, j, m[i][j], c.bw)
				}
			}
		}
	}
}

// The per-topology NVLink port budget: the V100's six ports stay the
// default, and a topology declaring a wider budget (the A100's 12
// bricks, the H100's 18) passes validation only with it declared.
func TestNVLinkPortBudget(t *testing.T) {
	build := func(ports int) *Topology {
		top := New()
		top.NVLinkPorts = ports
		mustAdd(top.AddNode(Node{ID: 0, Kind: GPU, Name: "GPU0"}))
		mustAdd(top.AddNode(Node{ID: 1, Kind: GPU, Name: "GPU1"}))
		mustAdd(top.AddNode(Node{ID: 2, Kind: CPU, Name: "CPU0"}))
		mustAdd(top.AddLink(Link{A: 0, B: 1, Type: NVLink, Lanes: 7, BW: 7 * NVLinkBrickBW, Latency: NVLinkLatency}))
		mustAdd(top.AddLink(Link{A: 0, B: 2, Type: PCIe, Lanes: 1, BW: PCIeGen3x16BW, Latency: PCIeLatency}))
		mustAdd(top.AddLink(Link{A: 1, B: 2, Type: PCIe, Lanes: 1, BW: PCIeGen3x16BW, Latency: PCIeLatency}))
		return top
	}
	if err := build(0).Validate(); err == nil {
		t.Error("7 lanes within the default 6-port budget should be rejected")
	}
	if err := build(7).Validate(); err != nil {
		t.Errorf("7 lanes within a declared 7-port budget: %v", err)
	}
}
