// Package topology models the interconnect network of a multi-GPU node: the
// set of processors (GPUs and CPUs), the links between them (NVLink, PCIe,
// QPI), and the routing policies traffic uses. The package provides the
// Volta-based DGX-1 wiring the paper profiles (its Figure 2).
package topology

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/units"
)

// NodeID identifies a processor in the topology. GPUs are numbered 0..n-1;
// CPUs get IDs above the GPUs.
type NodeID int

// NodeKind distinguishes processor types.
type NodeKind int

// Processor kinds.
const (
	GPU NodeKind = iota
	CPU
	// Switch is a cut-through fabric element (NVSwitch): traffic crossing
	// it is NOT store-and-forward — both attached links stream
	// concurrently at the path's bottleneck rate.
	Switch
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case GPU:
		return "GPU"
	case CPU:
		return "CPU"
	case Switch:
		return "Switch"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is one processor.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string
	// Socket is the CPU socket the node belongs to (for GPUs, the socket
	// whose PCIe root complex hosts them; for CPUs, their own index).
	Socket int
}

// LinkType distinguishes interconnect technologies.
type LinkType int

// Interconnect technologies.
const (
	NVLink LinkType = iota
	PCIe
	QPI
)

// String names the link type.
func (t LinkType) String() string {
	switch t {
	case NVLink:
		return "NVLink"
	case PCIe:
		return "PCIe"
	case QPI:
		return "QPI"
	}
	return fmt.Sprintf("LinkType(%d)", int(t))
}

// Link is a bidirectional connection between two nodes. Lanes counts
// physical links aggregated into this logical connection (the DGX-1 bonds
// pairs of NVLink bricks between some GPU pairs); BW is the aggregate
// bandwidth available in EACH direction.
type Link struct {
	A, B    NodeID
	Type    LinkType
	Lanes   int
	BW      units.Bandwidth
	Latency time.Duration
}

// Other returns the endpoint of l that is not n. It panics if n is not an
// endpoint, which would indicate a routing bug.
func (l *Link) Other(n NodeID) NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	panic(fmt.Sprintf("topology: node %d not on link %d-%d", n, l.A, l.B))
}

// String renders the link, e.g. "GPU0-GPU2 NVLink x2 50.00GB/s".
func (l *Link) String() string {
	return fmt.Sprintf("%d-%d %s x%d %v", l.A, l.B, l.Type, l.Lanes, l.BW)
}

// Topology is the interconnect graph.
type Topology struct {
	nodes []Node
	links []*Link
	adj   map[NodeID][]*Link

	// NVLinkPorts is the per-GPU NVLink port budget Validate enforces.
	// Zero means NVLinkPortsPerV100 (6) — the Volta default. Newer GPU
	// generations carry more bricks per package (12 on A100, 18 on H100),
	// so their builders raise the budget.
	NVLinkPorts int
}

// New creates an empty topology.
func New() *Topology {
	return &Topology{adj: make(map[NodeID][]*Link)}
}

// AddNode registers a processor. IDs must be unique.
func (t *Topology) AddNode(n Node) error {
	for _, e := range t.nodes {
		if e.ID == n.ID {
			return fmt.Errorf("topology: duplicate node id %d", n.ID)
		}
	}
	t.nodes = append(t.nodes, n)
	return nil
}

// AddLink registers a connection. Both endpoints must exist.
func (t *Topology) AddLink(l Link) error {
	if _, err := t.Node(l.A); err != nil {
		return err
	}
	if _, err := t.Node(l.B); err != nil {
		return err
	}
	if l.A == l.B {
		return fmt.Errorf("topology: self-link on node %d", l.A)
	}
	if l.BW <= 0 {
		return fmt.Errorf("topology: link %d-%d has non-positive bandwidth", l.A, l.B)
	}
	if l.Lanes <= 0 {
		l.Lanes = 1
	}
	lp := &l
	t.links = append(t.links, lp)
	t.adj[l.A] = append(t.adj[l.A], lp)
	t.adj[l.B] = append(t.adj[l.B], lp)
	return nil
}

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) (Node, error) {
	for _, n := range t.nodes {
		if n.ID == id {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("topology: unknown node %d", id)
}

// Nodes returns all nodes in ID order.
func (t *Topology) Nodes() []Node {
	out := make([]Node, len(t.nodes))
	copy(out, t.nodes)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// GPUs returns the IDs of all GPU nodes in ascending order.
func (t *Topology) GPUs() []NodeID {
	var ids []NodeID
	for _, n := range t.nodes {
		if n.Kind == GPU {
			ids = append(ids, n.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CPUs returns the IDs of all CPU nodes in ascending order.
func (t *Topology) CPUs() []NodeID {
	var ids []NodeID
	for _, n := range t.nodes {
		if n.Kind == CPU {
			ids = append(ids, n.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Links returns all links.
func (t *Topology) Links() []*Link {
	out := make([]*Link, len(t.links))
	copy(out, t.links)
	return out
}

// LinksAt returns the links incident to the node.
func (t *Topology) LinksAt(id NodeID) []*Link {
	out := make([]*Link, len(t.adj[id]))
	copy(out, t.adj[id])
	return out
}

// DirectLink returns the highest-bandwidth link of the given type directly
// connecting a and b, or nil if none exists.
func (t *Topology) DirectLink(a, b NodeID, typ LinkType) *Link {
	var best *Link
	for _, l := range t.adj[a] {
		if l.Type != typ {
			continue
		}
		if l.Other(a) != b {
			continue
		}
		if best == nil || l.BW > best.BW {
			best = l
		}
	}
	return best
}

// NVLinkNeighbors returns the GPU IDs directly reachable from id over
// NVLink, in ascending order.
func (t *Topology) NVLinkNeighbors(id NodeID) []NodeID {
	seen := map[NodeID]bool{}
	for _, l := range t.adj[id] {
		if l.Type == NVLink {
			seen[l.Other(id)] = true
		}
	}
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HostCPU returns the CPU whose PCIe root complex hosts the given GPU.
func (t *Topology) HostCPU(gpu NodeID) (NodeID, error) {
	g, err := t.Node(gpu)
	if err != nil {
		return 0, err
	}
	if g.Kind != GPU {
		return 0, fmt.Errorf("topology: node %d is not a GPU", gpu)
	}
	for _, n := range t.nodes {
		if n.Kind == CPU && n.Socket == g.Socket {
			return n.ID, nil
		}
	}
	return 0, fmt.Errorf("topology: GPU %d has no host CPU on socket %d", gpu, g.Socket)
}
