package topology

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/units"
)

// DGX-1 (Volta) interconnect parameters. Each NVLink 2.0 brick carries
// 25 GB/s per direction; bonded pairs provide 50 GB/s (paper §IV-A).
const (
	NVLinkBrickBW      = 25 * units.GBPerSec
	NVLinkLatency      = 1300 * time.Nanosecond // one-way, small-message
	PCIeGen3x16BW      = 16 * units.GBPerSec
	PCIeLatency        = 2500 * time.Nanosecond
	QPIBW              = 19 * units.GBPerSec
	QPILatency         = 500 * time.Nanosecond
	NVLinkPortsPerV100 = 6
)

// dgx1NVLinks is the Volta DGX-1 hybrid cube-mesh. The wiring satisfies
// every constraint the paper states about its Figure 2: GPU0's NVLink
// neighbors are exactly {1,2,3,6}; 0-1 and 0-2 are bonded dual links while
// 0-3 and 2-3 are single; 3-4 has no direct connection; 1-7 is direct;
// every V100 uses exactly its 6 NVLink ports; and any GPU pair is within
// two hops. It additionally provides the ring structure NCCL exploits: a
// lane-disjoint NVLink ring within the first quad (0-1-3-2-0) and two
// edge-disjoint Hamiltonian rings over all eight GPUs
// (0-1-5-4-6-7-3-2-0 and 0-6-2-4-5-3-7-1-0).
var dgx1NVLinks = []struct {
	a, b  NodeID
	lanes int
}{
	// Quad {0,1,2,3}.
	{0, 1, 2}, {0, 2, 2}, {0, 3, 1}, {1, 3, 1}, {2, 3, 1},
	// Quad {4,5,6,7}.
	{4, 5, 2}, {4, 6, 2}, {4, 7, 1}, {5, 7, 1}, {6, 7, 1},
	// Cross links.
	{0, 6, 1}, {1, 7, 2}, {1, 5, 1}, {2, 4, 1}, {2, 6, 2}, {3, 5, 2}, {3, 7, 1},
}

// DGX1 builds the Volta-based DGX-1 topology: 8 V100 GPUs, 2 Xeon CPUs,
// NVLink cube-mesh, per-GPU PCIe, and a QPI link between the sockets.
func DGX1() *Topology {
	return DGX1Scaled(1)
}

// DGX1Scaled builds the DGX-1 with every NVLink's bandwidth multiplied by
// nvlinkScale — the "what if the interconnect were faster?" knob behind
// the paper's insight that raising bandwidth alone cannot remove the
// communication bottleneck. A scale <= 0 removes NVLink entirely,
// producing the PCIe-only machine (the baseline the NVLink-vs-PCIe
// comparisons in the paper's related work use).
func DGX1Scaled(nvlinkScale float64) *Topology {
	return dgx1Build(nvlinkScale, DGX1FaultSpec{})
}

// DGX1PCIeOnly builds the DGX-1 chassis without NVLink: all GPU-to-GPU
// traffic crosses the PCIe root complexes (and QPI across sockets).
func DGX1PCIeOnly() *Topology {
	return DGX1Scaled(0)
}

// DGX1FaultSpec parameterizes the degraded-fabric DGX-1 builder. All
// fields describe departures from the healthy machine; the zero value
// builds the ordinary DGX1().
type DGX1FaultSpec struct {
	// FailedNVLinks lists NVLink connections removed entirely (failed
	// bricks). Pair order does not matter.
	FailedNVLinks [][2]NodeID
	// DegradedNVLinks scales the bandwidth of specific surviving NVLink
	// connections: the value is the remaining fraction in (0, 1]. Keys are
	// canonicalized internally, so either pair order works.
	DegradedNVLinks map[[2]NodeID]float64
	// PCIeScale is the remaining fraction of every PCIe link's bandwidth
	// (host contention on the root complexes). <= 0 or >= 1 leaves PCIe
	// at full speed.
	PCIeScale float64
}

// DGX1Degraded builds the DGX-1 with the listed NVLink connections removed
// (failed bricks) — the failure-injection variant used to check that ring
// construction and routing degrade gracefully rather than break.
func DGX1Degraded(failed ...[2]NodeID) *Topology {
	return DGX1Faulted(DGX1FaultSpec{FailedNVLinks: failed})
}

// DGX1Faulted builds the DGX-1 with the fault spec applied: failed bricks
// are absent from the link set (so ring construction and routing see the
// degraded graph, not a zero-bandwidth edge), degraded links keep their
// lanes but lose bandwidth, and PCIe contention shrinks every host link.
func DGX1Faulted(f DGX1FaultSpec) *Topology {
	return dgx1Build(1, f)
}

// dgx1Build is the one DGX-1 chassis builder behind DGX1, DGX1Scaled,
// DGX1Degraded, and DGX1Faulted.
func dgx1Build(nvlinkScale float64, f DGX1FaultSpec) *Topology {
	bad := make(map[pairKey]bool, len(f.FailedNVLinks))
	for _, p := range f.FailedNVLinks {
		bad[normPair(p[0], p[1])] = true
	}
	slow := make(map[pairKey]float64, len(f.DegradedNVLinks))
	for p, frac := range f.DegradedNVLinks {
		slow[normPair(p[0], p[1])] = frac
	}
	pcieScale := f.PCIeScale
	if pcieScale <= 0 || pcieScale >= 1 {
		pcieScale = 1
	}

	t := New()
	const nGPU = 8
	for i := 0; i < nGPU; i++ {
		socket := 0
		if i >= 4 {
			socket = 1
		}
		mustAdd(t.AddNode(Node{ID: NodeID(i), Kind: GPU, Name: fmt.Sprintf("GPU%d", i), Socket: socket}))
	}
	cpu0 := NodeID(nGPU)
	cpu1 := NodeID(nGPU + 1)
	mustAdd(t.AddNode(Node{ID: cpu0, Kind: CPU, Name: "CPU0", Socket: 0}))
	mustAdd(t.AddNode(Node{ID: cpu1, Kind: CPU, Name: "CPU1", Socket: 1}))

	if nvlinkScale > 0 {
		for _, e := range dgx1NVLinks {
			if bad[normPair(e.a, e.b)] {
				continue
			}
			bw := float64(e.lanes) * nvlinkScale * float64(NVLinkBrickBW)
			if frac, ok := slow[normPair(e.a, e.b)]; ok && frac > 0 && frac < 1 {
				bw *= frac
			}
			mustAdd(t.AddLink(Link{
				A: e.a, B: e.b, Type: NVLink, Lanes: e.lanes,
				BW:      units.Bandwidth(bw),
				Latency: NVLinkLatency,
			}))
		}
	}
	for i := 0; i < nGPU; i++ {
		host := cpu0
		if i >= 4 {
			host = cpu1
		}
		mustAdd(t.AddLink(Link{
			A: NodeID(i), B: host, Type: PCIe, Lanes: 1,
			BW: units.Bandwidth(pcieScale * float64(PCIeGen3x16BW)), Latency: PCIeLatency,
		}))
	}
	mustAdd(t.AddLink(Link{A: cpu0, B: cpu1, Type: QPI, Lanes: 1, BW: QPIBW, Latency: QPILatency}))
	return t
}

// DGX1HasNVLink reports whether the healthy Volta DGX-1 wires a direct
// NVLink connection between the two GPUs — the existence check fault
// plans use to reject typo'd link references before building anything.
func DGX1HasNVLink(a, b NodeID) bool {
	p := normPair(a, b)
	for _, e := range dgx1NVLinks {
		if normPair(e.a, e.b) == p {
			return true
		}
	}
	return false
}

// pairKey is an unordered GPU pair.
type pairKey struct{ a, b NodeID }

// normPair canonicalizes an unordered pair.
func normPair(a, b NodeID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// DGX1Pascal builds the first-generation (Pascal) DGX-1 interconnect: the
// same chassis but NVLink 1.0 bricks at 20 GB/s and only 4 ports per P100,
// so the cube-mesh has no bonded pairs and fewer cross links. The paper's
// related work (Gawande et al.) benchmarks this machine; comparing it with
// the Volta system isolates what the extra links and bandwidth buy.
func DGX1Pascal() *Topology {
	const pascalBrickBW = 20 * units.GBPerSec
	links := []struct{ a, b NodeID }{
		// Hybrid cube-mesh with 4 ports per GPU: two quad rings plus a
		// full set of cross links.
		{0, 1}, {0, 3}, {1, 2}, {2, 3},
		{4, 5}, {4, 7}, {5, 6}, {6, 7},
		{0, 4}, {1, 5}, {2, 6}, {3, 7},
		{0, 2}, {1, 3}, {4, 6}, {5, 7},
	}
	t := New()
	const nGPU = 8
	for i := 0; i < nGPU; i++ {
		socket := 0
		if i >= 4 {
			socket = 1
		}
		mustAdd(t.AddNode(Node{ID: NodeID(i), Kind: GPU, Name: fmt.Sprintf("GPU%d", i), Socket: socket}))
	}
	cpu0, cpu1 := NodeID(nGPU), NodeID(nGPU+1)
	mustAdd(t.AddNode(Node{ID: cpu0, Kind: CPU, Name: "CPU0", Socket: 0}))
	mustAdd(t.AddNode(Node{ID: cpu1, Kind: CPU, Name: "CPU1", Socket: 1}))
	for _, e := range links {
		mustAdd(t.AddLink(Link{A: e.a, B: e.b, Type: NVLink, Lanes: 1, BW: pascalBrickBW, Latency: NVLinkLatency}))
	}
	for i := 0; i < nGPU; i++ {
		host := cpu0
		if i >= 4 {
			host = cpu1
		}
		mustAdd(t.AddLink(Link{A: NodeID(i), B: host, Type: PCIe, Lanes: 1, BW: PCIeGen3x16BW, Latency: PCIeLatency}))
	}
	mustAdd(t.AddLink(Link{A: cpu0, B: cpu1, Type: QPI, Lanes: 1, BW: QPIBW, Latency: QPILatency}))
	return t
}

// DGX2 builds the NVSwitch generation that followed the paper (16 V100s,
// every GPU attached to a cut-through switch fabric by six bonded NVLink
// bricks = 150 GB/s per direction, uniform all-to-all bandwidth). It is
// the machine that removed the asymmetric-topology effects — staged
// transfers, idle GPUs on slow pairs — the paper diagnosed; the
// reproduction uses it as the "what the findings called for" ablation.
func DGX2() *Topology {
	return nvswitchBuild(16, NVLinkPortsPerV100, NVLinkBrickBW)
}

// DGXA100 builds the Ampere-generation NVSwitch box: 8 A100s, each wired
// to the switch plane by 12 third-generation NVLink bricks (25 GB/s per
// brick per direction = 300 GB/s per GPU).
func DGXA100() *Topology {
	return nvswitchBuild(8, 12, NVLinkBrickBW)
}

// DGXH100 builds the Hopper-generation NVSwitch box: 8 H100s with 18
// fourth-generation NVLink bricks each (25 GB/s per brick per direction =
// 450 GB/s per GPU).
func DGXH100() *Topology {
	return nvswitchBuild(8, 18, NVLinkBrickBW)
}

// nvswitchBuild is the shared NVSwitch-chassis builder: nGPU GPUs split
// across two sockets, each attached to a single cut-through switch node by
// `lanes` NVLink bricks of brickBW each, plus per-GPU PCIe and QPI. Real
// machines stripe across 6–12 physical switch chips; because every chip
// is a full crossbar, a single switch node with the aggregate per-GPU
// bandwidth is an exact model for bandwidth and one-hop latency.
func nvswitchBuild(nGPU, lanes int, brickBW units.Bandwidth) *Topology {
	t := New()
	t.NVLinkPorts = lanes
	half := nGPU / 2
	for i := 0; i < nGPU; i++ {
		socket := 0
		if i >= half {
			socket = 1
		}
		mustAdd(t.AddNode(Node{ID: NodeID(i), Kind: GPU, Name: fmt.Sprintf("GPU%d", i), Socket: socket}))
	}
	cpu0, cpu1 := NodeID(nGPU), NodeID(nGPU+1)
	sw := NodeID(nGPU + 2)
	mustAdd(t.AddNode(Node{ID: cpu0, Kind: CPU, Name: "CPU0", Socket: 0}))
	mustAdd(t.AddNode(Node{ID: cpu1, Kind: CPU, Name: "CPU1", Socket: 1}))
	mustAdd(t.AddNode(Node{ID: sw, Kind: Switch, Name: "NVSwitch", Socket: 0}))
	for i := 0; i < nGPU; i++ {
		mustAdd(t.AddLink(Link{
			A: NodeID(i), B: sw, Type: NVLink, Lanes: lanes,
			BW: units.Bandwidth(lanes) * brickBW, Latency: NVLinkLatency,
		}))
		host := cpu0
		if i >= half {
			host = cpu1
		}
		mustAdd(t.AddLink(Link{A: NodeID(i), B: host, Type: PCIe, Lanes: 1, BW: PCIeGen3x16BW, Latency: PCIeLatency}))
	}
	mustAdd(t.AddLink(Link{A: cpu0, B: cpu1, Type: QPI, Lanes: 1, BW: QPIBW, Latency: QPILatency}))
	return t
}

// mustAdd panics on construction errors: the DGX-1 builder is static data,
// so any failure is a programming error, not a runtime condition.
func mustAdd(err error) {
	if err != nil {
		panic(err)
	}
}

// Validate checks structural invariants: every GPU has a host CPU and a
// PCIe link, NVLink port budgets are respected, and every GPU pair is
// reachable within two NVLink hops or over PCIe.
func (t *Topology) Validate() error {
	gpus := t.GPUs()
	if len(gpus) == 0 {
		return fmt.Errorf("topology: no GPUs")
	}
	for _, g := range gpus {
		if _, err := t.HostCPU(g); err != nil {
			return err
		}
		host, _ := t.HostCPU(g)
		if t.DirectLink(g, host, PCIe) == nil {
			return fmt.Errorf("topology: GPU %d missing PCIe link to host CPU %d", g, host)
		}
		budget := t.NVLinkPorts
		if budget <= 0 {
			budget = NVLinkPortsPerV100
		}
		ports := 0
		for _, l := range t.adj[g] {
			if l.Type == NVLink {
				ports += l.Lanes
			}
		}
		if ports > budget {
			return fmt.Errorf("topology: GPU %d uses %d NVLink ports, budget is %d", g, ports, budget)
		}
	}
	for _, a := range gpus {
		for _, b := range gpus {
			if a >= b {
				continue
			}
			if _, err := t.Route(a, b, RouteStagedNVLink); err != nil {
				return fmt.Errorf("topology: no route %d -> %d: %w", a, b, err)
			}
		}
	}
	return nil
}

// BandwidthMatrix returns, for each ordered GPU pair, the bottleneck
// bandwidth of the routed path under the policy (0 on the diagonal).
func (t *Topology) BandwidthMatrix(policy RoutePolicy) ([][]units.Bandwidth, error) {
	gpus := t.GPUs()
	m := make([][]units.Bandwidth, len(gpus))
	for i, a := range gpus {
		m[i] = make([]units.Bandwidth, len(gpus))
		for j, b := range gpus {
			if a == b {
				continue
			}
			p, err := t.Route(a, b, policy)
			if err != nil {
				return nil, err
			}
			m[i][j] = units.Bandwidth(p.MinBW())
		}
	}
	return m, nil
}

// Describe renders a human-readable summary of the topology: nodes, links,
// and the NVLink adjacency matrix in nvidia-smi style (NV1/NV2 for 1- and
// 2-lane NVLink, PIX for PCIe-only pairs).
func (t *Topology) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Nodes:\n")
	for _, n := range t.Nodes() {
		fmt.Fprintf(&b, "  %-6s kind=%s socket=%d\n", n.Name, n.Kind, n.Socket)
	}
	fmt.Fprintf(&b, "Links:\n")
	for _, l := range t.Links() {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	gpus := t.GPUs()
	fmt.Fprintf(&b, "NVLink adjacency:\n      ")
	for _, g := range gpus {
		fmt.Fprintf(&b, "%5s", fmt.Sprintf("G%d", g))
	}
	fmt.Fprintln(&b)
	for _, a := range gpus {
		fmt.Fprintf(&b, "  %-4s", fmt.Sprintf("G%d", a))
		for _, c := range gpus {
			cell := "  PIX"
			if a == c {
				cell = "    X"
			} else if l := t.DirectLink(a, c, NVLink); l != nil {
				cell = fmt.Sprintf("  NV%d", l.Lanes)
			}
			fmt.Fprintf(&b, "%s", cell)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
