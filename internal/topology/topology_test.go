package topology

import (
	"testing"

	"repro/internal/units"
)

func TestDGX1Validates(t *testing.T) {
	top := DGX1()
	if err := top.Validate(); err != nil {
		t.Fatalf("DGX1 topology invalid: %v", err)
	}
}

func TestDGX1NodeCounts(t *testing.T) {
	top := DGX1()
	if got := len(top.GPUs()); got != 8 {
		t.Errorf("GPUs = %d, want 8", got)
	}
	if got := len(top.CPUs()); got != 2 {
		t.Errorf("CPUs = %d, want 2", got)
	}
}

// The paper states each V100 has 6 NVLink ports, all used.
func TestDGX1AllNVLinkPortsUsed(t *testing.T) {
	top := DGX1()
	for _, g := range top.GPUs() {
		ports := 0
		for _, l := range top.LinksAt(g) {
			if l.Type == NVLink {
				ports += l.Lanes
			}
		}
		if ports != NVLinkPortsPerV100 {
			t.Errorf("GPU%d uses %d NVLink ports, want %d", g, ports, NVLinkPortsPerV100)
		}
	}
}

// Constraints the paper states explicitly about Figure 2.
func TestDGX1PaperConstraints(t *testing.T) {
	top := DGX1()

	// "GPU0 has direct NVLink connections with GPU1, GPU2, GPU3, and GPU6."
	want := []NodeID{1, 2, 3, 6}
	got := top.NVLinkNeighbors(0)
	if len(got) != len(want) {
		t.Fatalf("GPU0 neighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GPU0 neighbors = %v, want %v", got, want)
		}
	}

	// "The BW between GPU0 and GPU1, and GPU0 and GPU2, is twice the BW
	// rate between GPU0 and GPU3."
	bw01 := top.DirectLink(0, 1, NVLink).BW
	bw02 := top.DirectLink(0, 2, NVLink).BW
	bw03 := top.DirectLink(0, 3, NVLink).BW
	if bw01 != 2*bw03 || bw02 != 2*bw03 {
		t.Errorf("bw(0-1)=%v bw(0-2)=%v bw(0-3)=%v; want first two = 2x last", bw01, bw02, bw03)
	}

	// "some GPUs have only one direct connection (e.g. between GPU2 and
	// GPU3)".
	if l := top.DirectLink(2, 3, NVLink); l == nil || l.Lanes != 1 {
		t.Errorf("GPU2-GPU3 should be a single NVLink, got %v", l)
	}

	// "some GPUs may not have a direct connection (e.g. between GPU3 and
	// GPU4)".
	if l := top.DirectLink(3, 4, NVLink); l != nil {
		t.Errorf("GPU3-GPU4 should have no direct NVLink, got %v", l)
	}

	// "GPU1 has a direct NVLink connection with GPU7."
	if l := top.DirectLink(1, 7, NVLink); l == nil {
		t.Error("GPU1-GPU7 should have a direct NVLink")
	}

	// NVLink brick bandwidth: 25 GB/s per direction, 50 for bonded pairs.
	if bw03 != 25*units.GBPerSec {
		t.Errorf("single NVLink BW = %v, want 25GB/s", bw03)
	}
	if bw01 != 50*units.GBPerSec {
		t.Errorf("dual NVLink BW = %v, want 50GB/s", bw01)
	}
}

// "A maximum of one intermediate node (two hops) is required to connect any
// pair of GPUs" — under staged-NVLink routing.
func TestDGX1TwoHopDiameter(t *testing.T) {
	top := DGX1()
	gpus := top.GPUs()
	for _, a := range gpus {
		for _, b := range gpus {
			if a == b {
				continue
			}
			hops, err := top.HopCount(a, b, RouteStagedNVLink)
			if err != nil {
				t.Fatalf("route %d->%d: %v", a, b, err)
			}
			if hops > 2 {
				t.Errorf("route %d->%d takes %d hops, want <= 2", a, b, hops)
			}
		}
	}
}

func TestRouteDirectBeatsStaged(t *testing.T) {
	top := DGX1()
	p, err := top.Route(0, 2, RouteStagedNVLink)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 1 || p.Hops[0].Link.Type != NVLink {
		t.Errorf("0->2 should be one direct NVLink hop, got %v", p)
	}
}

func TestRouteStagedPicksBestIntermediate(t *testing.T) {
	top := DGX1()
	p, err := top.Route(0, 7, RouteStagedNVLink)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 2 {
		t.Fatalf("0->7 should be 2 hops, got %v", p)
	}
	mid := p.Hops[0].To
	// 0-1 (x2) then 1-7 (x2) gives a 50GB/s bottleneck; no intermediate
	// does better.
	if mid != 1 {
		t.Errorf("0->7 staged via GPU%d, want GPU1; path %v", mid, p)
	}
	if got := p.MinBW(); got != float64(50*units.GBPerSec) {
		t.Errorf("0->7 bottleneck = %v, want 50GB/s", units.Bandwidth(got))
	}
}

func TestRoutePCIeFallbackCrossesSockets(t *testing.T) {
	top := DGX1()
	p, err := top.Route(0, 7, RoutePCIeFallback)
	if err != nil {
		t.Fatal(err)
	}
	// GPU0 -> CPU0 -> CPU1 -> GPU7: PCIe, QPI, PCIe.
	if len(p.Hops) != 3 {
		t.Fatalf("0->7 PCIe path = %v, want 3 hops", p)
	}
	if p.Hops[0].Link.Type != PCIe || p.Hops[1].Link.Type != QPI || p.Hops[2].Link.Type != PCIe {
		t.Errorf("0->7 PCIe path types wrong: %v", p)
	}
}

func TestRoutePCIeFallbackSameSocket(t *testing.T) {
	top := DGX1()
	// 1 and 2 are on socket 0 and have no direct NVLink; the PCIe
	// fallback path is GPU1 -> CPU0 -> GPU2.
	if top.DirectLink(1, 2, NVLink) != nil {
		t.Fatal("test assumes 1-2 has no direct NVLink")
	}
	p, err := top.Route(1, 2, RoutePCIeFallback)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 2 {
		t.Fatalf("1->2 PCIe path = %v, want 2 hops", p)
	}
}

func TestRouteSelfErrors(t *testing.T) {
	top := DGX1()
	if _, err := top.Route(0, 0, RouteStagedNVLink); err == nil {
		t.Error("routing to self should error")
	}
}

func TestHostCPU(t *testing.T) {
	top := DGX1()
	for g := 0; g < 4; g++ {
		host, err := top.HostCPU(NodeID(g))
		if err != nil || host != 8 {
			t.Errorf("HostCPU(GPU%d) = %d, %v; want CPU node 8", g, host, err)
		}
	}
	for g := 4; g < 8; g++ {
		host, err := top.HostCPU(NodeID(g))
		if err != nil || host != 9 {
			t.Errorf("HostCPU(GPU%d) = %d, %v; want CPU node 9", g, host, err)
		}
	}
	if _, err := top.HostCPU(8); err == nil {
		t.Error("HostCPU of a CPU should error")
	}
}

func TestBandwidthMatrixSymmetricDiagonalZero(t *testing.T) {
	top := DGX1()
	m, err := top.BandwidthMatrix(RouteStagedNVLink)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %v, want 0", i, i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("matrix asymmetric at [%d][%d]: %v vs %v", i, j, m[i][j], m[j][i])
			}
		}
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	top := New()
	if err := top.AddNode(Node{ID: 0, Kind: GPU}); err != nil {
		t.Fatal(err)
	}
	if err := top.AddNode(Node{ID: 0, Kind: CPU}); err == nil {
		t.Error("duplicate node ID should error")
	}
}

func TestAddLinkValidation(t *testing.T) {
	top := New()
	if err := top.AddNode(Node{ID: 0, Kind: GPU}); err != nil {
		t.Fatal(err)
	}
	if err := top.AddLink(Link{A: 0, B: 1, Type: NVLink, BW: 1}); err == nil {
		t.Error("link to unknown node should error")
	}
	if err := top.AddNode(Node{ID: 1, Kind: GPU}); err != nil {
		t.Fatal(err)
	}
	if err := top.AddLink(Link{A: 0, B: 0, Type: NVLink, BW: 1}); err == nil {
		t.Error("self link should error")
	}
	if err := top.AddLink(Link{A: 0, B: 1, Type: NVLink, BW: 0}); err == nil {
		t.Error("zero-bandwidth link should error")
	}
}

func TestDescribeMentionsEveryGPU(t *testing.T) {
	s := DGX1().Describe()
	for g := 0; g < 8; g++ {
		name := "GPU" + string(rune('0'+g))
		if !contains(s, name) {
			t.Errorf("Describe() missing %s", name)
		}
	}
	if !contains(s, "NV2") || !contains(s, "NV1") || !contains(s, "PIX") {
		t.Error("Describe() missing adjacency codes")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
