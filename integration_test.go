package repro

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kvstore"
	"repro/internal/topology"
	"repro/internal/train"
)

// Cross-layer consistency: the Figure 3 experiment's rendered cells must
// equal what a direct core.Run of the same configuration measures (the
// experiment layer adds only formatting and error bars).
func TestExperimentMatchesDirectRun(t *testing.T) {
	tabs, err := experiments.Fig3(experiments.Options{Repetitions: 1, Seed: 1, JitterRel: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	// First table: LeNet with p2p; row 0 = batch 16; column 3 = 4 GPUs.
	cell := tabs[0].Rows()[0][3]
	mean := strings.TrimSpace(strings.Split(cell, "±")[0])
	parsed, err := time.ParseDuration(mean)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	direct, err := core.Run(core.Workload{Model: "lenet", GPUs: 4, Batch: 16, Method: core.P2P})
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(parsed.Seconds() - direct.EpochTime.Seconds())
	if diff/direct.EpochTime.Seconds() > 0.01 {
		t.Errorf("experiment cell %v vs direct run %v", parsed, direct.EpochTime)
	}
}

// The route-policy knob: forcing PCIe fallback for peer copies (no staged
// NVLink relays) must slow 8-GPU P2P training, where staging is exactly
// what MXNet uses to dodge the missing direct links.
func TestRoutePolicyMatters(t *testing.T) {
	run := func(policy topology.RoutePolicy) time.Duration {
		cfg, err := train.NewConfig("alexnet", 8, 16, kvstore.MethodP2P)
		if err != nil {
			t.Fatal(err)
		}
		cfg.RoutePolicy = policy
		tr, err := train.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.EpochTime
	}
	staged := run(topology.RouteStagedNVLink)
	pcie := run(topology.RoutePCIeFallback)
	if pcie <= staged {
		t.Errorf("PCIe-fallback routing (%v) should be slower than staged NVLink (%v)", pcie, staged)
	}
}

// End-to-end sanity across every workload/method pair at one configuration
// each — the smoke test a release would gate on.
func TestEndToEndSmoke(t *testing.T) {
	for _, model := range core.Models() {
		for _, method := range []core.Method{core.P2P, core.NCCL, kvstore.MethodLocal} {
			r, err := core.Run(core.Workload{Model: model, GPUs: 2, Batch: 16, Method: method})
			if err != nil {
				t.Fatalf("%s/%s: %v", model, method, err)
			}
			if r.EpochTime <= 0 || r.Throughput <= 0 {
				t.Fatalf("%s/%s: degenerate result", model, method)
			}
		}
	}
}
