// Benchmarks regenerating each of the paper's tables and figures. Run
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment sweep; with -v the
// rendered tables are logged, so a benchmark run doubles as the
// reproduction harness. Custom metrics surface the key quantitative shapes
// (speedups, overheads, crossovers) so regressions in the model are caught
// by numbers, not just by runtime.
package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"repro/internal/commbench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kvstore"
	"repro/internal/service"
	"repro/internal/topology"
	"repro/internal/train"
	"repro/internal/units"
)

// benchOpts uses fewer jitter repetitions than the paper's 5; the
// simulation cost per configuration is unchanged.
var benchOpts = experiments.Options{Repetitions: 3, Seed: 1}

// runExperiment executes one paper artifact b.N times, logging the tables
// from the final run.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

// epoch simulates one configuration and returns epoch seconds.
func epoch(b *testing.B, model string, gpus, batch int, method kvstore.Method) float64 {
	b.Helper()
	cfg, err := train.NewConfig(model, gpus, batch, method)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := train.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res.EpochTime.Seconds()
}

// BenchmarkTable1NetworkStats regenerates Table I (network descriptions).
func BenchmarkTable1NetworkStats(b *testing.B) {
	runExperiment(b, "table1")
}

// BenchmarkFig1Timeline regenerates Figure 1 (the epoch timeline summary).
func BenchmarkFig1Timeline(b *testing.B) {
	runExperiment(b, "fig1")
}

// BenchmarkFig2Topology regenerates Figure 2 (DGX-1 topology).
func BenchmarkFig2Topology(b *testing.B) {
	runExperiment(b, "fig2")
}

// BenchmarkFig3TrainingTime regenerates Figure 3 (the full 5 networks x 2
// methods x 3 batches x 4 GPU-count training-time sweep) and reports the
// paper's headline speedup shapes as custom metrics.
func BenchmarkFig3TrainingTime(b *testing.B) {
	runExperiment(b, "fig3")
	base := epoch(b, "lenet", 1, 16, kvstore.MethodP2P)
	b.ReportMetric(base/epoch(b, "lenet", 8, 16, kvstore.MethodP2P), "lenet-p2p-8gpu-speedup")
	p4 := epoch(b, "resnet", 4, 16, kvstore.MethodP2P)
	n4 := epoch(b, "resnet", 4, 16, kvstore.MethodNCCL)
	b.ReportMetric(p4/n4, "resnet-4gpu-nccl-advantage")
}

// BenchmarkTable2NCCLOverhead regenerates Table II (single-GPU NCCL
// overhead) and reports the paper's 21.8% LeNet anchor.
func BenchmarkTable2NCCLOverhead(b *testing.B) {
	runExperiment(b, "table2")
	p := epoch(b, "lenet", 1, 16, kvstore.MethodP2P)
	n := epoch(b, "lenet", 1, 16, kvstore.MethodNCCL)
	b.ReportMetric(100*(n-p)/p, "lenet-b16-overhead-%")
}

// BenchmarkFig4Breakdown regenerates Figure 4 (FP+BP vs WU decomposition).
func BenchmarkFig4Breakdown(b *testing.B) {
	runExperiment(b, "fig4")
}

// BenchmarkTable3SyncOverhead regenerates Table III (cudaStreamSynchronize
// share for LeNet).
func BenchmarkTable3SyncOverhead(b *testing.B) {
	runExperiment(b, "table3")
}

// BenchmarkTable4Memory regenerates Table IV (memory usage and the 16GB
// trainability boundary).
func BenchmarkTable4Memory(b *testing.B) {
	runExperiment(b, "table4")
}

// BenchmarkFig5WeakScaling regenerates Figure 5 (weak scaling).
func BenchmarkFig5WeakScaling(b *testing.B) {
	runExperiment(b, "fig5")
}

// --- ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationTensorCores quantifies the tensor-core lowering:
// ResNet-50 single-GPU epoch with and without it.
func BenchmarkAblationTensorCores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, err := train.NewConfig("resnet", 1, 16, kvstore.MethodP2P)
		if err != nil {
			b.Fatal(err)
		}
		cfg.TensorCores = false
		tr, err := train.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		off, err := tr.Run()
		if err != nil {
			b.Fatal(err)
		}
		on := epoch(b, "resnet", 1, 16, kvstore.MethodP2P)
		b.ReportMetric(off.EpochTime.Seconds()/on, "tensor-core-speedup")
	}
}

// BenchmarkAblationBPWUOverlap quantifies MXNet's BP/WU pipelining by
// comparing the exposed WU against the total communication a serialized
// schedule would expose (approximated by the sync-SGD barrier tail).
func BenchmarkAblationBPWUOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, err := train.NewConfig("resnet", 8, 16, kvstore.MethodNCCL)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := train.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.WUWall.Seconds()/res.EpochTime.Seconds(), "exposed-wu-%")
	}
}

// BenchmarkAblationAsyncSGD quantifies the ASGD extension against
// synchronous SGD for the communication-bound AlexNet at 4 GPUs.
func BenchmarkAblationAsyncSGD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		syncT := epoch(b, "alexnet", 4, 16, kvstore.MethodP2P)
		cfg, err := train.NewConfig("alexnet", 4, 16, kvstore.MethodP2P)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Async = true
		tr, err := train.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(syncT/res.EpochTime.Seconds(), "asgd-speedup")
	}
}

// BenchmarkAblationInterconnect sweeps NVLink bandwidth (PCIe-only, 1x,
// 4x) for 8-GPU AlexNet — the paper's insight that bandwidth alone cannot
// remove the communication bottleneck, quantified.
func BenchmarkAblationInterconnect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(top *topology.Topology) float64 {
			cfg, err := train.NewConfig("alexnet", 8, 16, kvstore.MethodNCCL)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Topology = top
			tr, err := train.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := tr.Run()
			if err != nil {
				b.Fatal(err)
			}
			return res.EpochTime.Seconds()
		}
		base := run(topology.DGX1())
		b.ReportMetric(run(topology.DGX1PCIeOnly())/base, "pcie-only-slowdown")
		b.ReportMetric(base/run(topology.DGX1Scaled(4)), "4x-nvlink-speedup")
	}
}

// BenchmarkAblationModelParallel compares pipelined model parallelism with
// data parallelism for the FC-heavy AlexNet (paper §I's contrast).
func BenchmarkAblationModelParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dp := epoch(b, "alexnet", 4, 64, kvstore.MethodP2P)
		cfg, err := train.NewConfig("alexnet", 4, 64, kvstore.MethodP2P)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Parallelism = train.ModelParallel
		tr, err := train.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		mp, err := tr.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dp/mp.EpochTime.Seconds(), "dp-over-mp")
	}
}

// BenchmarkAblationCheckpointing quantifies gradient checkpointing: the
// memory saved and the time paid for ResNet-50 at batch 32.
func BenchmarkAblationCheckpointing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := epoch(b, "resnet", 4, 32, kvstore.MethodNCCL)
		cfg, err := train.NewConfig("resnet", 4, 32, kvstore.MethodNCCL)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Checkpointing = true
		tr, err := train.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EpochTime.Seconds()/plain, "checkpoint-slowdown")
		b.ReportMetric(float64(tr.Memory().FeatureMaps)/float64(1<<30), "featmaps-GiB")
	}
}

// BenchmarkAblationWinograd quantifies the Winograd 3x3 lowering for the
// 3x3-dominated ResNet-50.
func BenchmarkAblationWinograd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := epoch(b, "resnet", 1, 32, kvstore.MethodP2P)
		cfg, err := train.NewConfig("resnet", 1, 32, kvstore.MethodP2P)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Winograd = true
		tr, err := train.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(plain/res.EpochTime.Seconds(), "winograd-speedup")
	}
}

// BenchmarkCommMicro is the nccl-tests analog: large-message 8-GPU
// all-reduce bus bandwidth under both methods.
func BenchmarkCommMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, err := commbench.Measure(commbench.AllReduce, kvstore.MethodNCCL, 8, 256*units.MB)
		if err != nil {
			b.Fatal(err)
		}
		p, err := commbench.Measure(commbench.AllReduce, kvstore.MethodP2P, 8, 256*units.MB)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n.BusBW)/float64(1<<30), "nccl-busbw-GB/s")
		b.ReportMetric(float64(p.BusBW)/float64(1<<30), "p2p-busbw-GB/s")
	}
}

// BenchmarkSimulatorThroughput measures the raw simulator speed (one
// Inception-v3 8-GPU configuration per iteration) — the engineering metric
// that keeps the full sweeps tractable.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		epoch(b, "inception-v3", 8, 16, kvstore.MethodNCCL)
	}
}

// BenchmarkServiceSweep tracks the serving layer's performance from day
// one: a 16-configuration /v1/sweep through the full HTTP stack, cold
// (every cell simulated) vs warm (every cell a cache hit), with 1
// worker vs NumCPU workers. Warm runs measure pure cache+serialization
// latency; the cold worker sweep measures the pool's fan-out speedup.
func BenchmarkServiceSweep(b *testing.B) {
	sweepBody, err := json.Marshal(service.SweepRequest{
		Base:    core.Workload{Images: 4096},
		Models:  []string{"lenet"},
		GPUs:    []int{1, 2, 4, 8},
		Batches: []int{16, 32},
		Methods: []core.Method{core.P2P, core.NCCL},
	})
	if err != nil {
		b.Fatal(err)
	}
	sweep := func(b *testing.B, ts *httptest.Server) {
		b.Helper()
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(sweepBody))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		var sr service.SweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || sr.Count != 16 {
			b.Fatalf("sweep: status %d, count %d", resp.StatusCode, sr.Count)
		}
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("cold/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				core.ResetCaches() // keep "cold" cold under the artifact layer
				svc := service.NewServer(service.Config{Workers: workers})
				ts := httptest.NewServer(svc.Handler())
				b.StartTimer()
				sweep(b, ts)
				b.StopTimer()
				ts.Close()
				svc.Close()
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("warm/workers=%d", workers), func(b *testing.B) {
			svc := service.NewServer(service.Config{Workers: workers})
			ts := httptest.NewServer(svc.Handler())
			defer func() {
				ts.Close()
				svc.Close()
			}()
			sweep(b, ts) // fill the cache outside the timer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sweep(b, ts)
			}
			b.StopTimer()
			st := svc.CacheStats()
			b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "cache-hit-ratio")
		})
	}
}

// The three benchmarks below are the tracked baseline `make bench-json`
// snapshots into BENCH_<date>.json: the compile-once/simulate-many split
// lives or dies by the cold/warm gap (warm runs skip graph building, plan
// lowering, and the discrete-event window and only redo extrapolation
// arithmetic), so ns/op and allocs/op for these three are the numbers to
// watch across commits.

// benchWorkload is a mid-sized configuration: large enough that compile
// cost dominates a cold run, small enough to keep -benchtime reasonable.
var benchWorkload = core.Workload{Model: "resnet", GPUs: 4, Batch: 32, Images: 64 * 1024}

// BenchmarkCoreRunCold measures a full compile+simulate: every iteration
// drops the artifact caches first.
func BenchmarkCoreRunCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ResetCaches()
		if _, err := core.Run(benchWorkload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreRunWarm measures a cache-served run: the window is
// compiled once outside the timer, then every iteration reuses it.
func BenchmarkCoreRunWarm(b *testing.B) {
	core.ResetCaches()
	if _, err := core.Run(benchWorkload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(benchWorkload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceCacheHit measures the warm /v1/simulate hit path —
// the allocation floor the preserialized byte cache buys. Every
// iteration drives the full handler stack (mux, admission, fingerprint,
// cache) via ServeHTTP on a recorder, no client or socket in the loop;
// on a hit the handler writes the cached bytes verbatim, so JSON
// marshaling must contribute zero allocs/op here. Tracked in the
// committed baseline and gated by `make bench-gate`.
func BenchmarkServiceCacheHit(b *testing.B) {
	svc := service.NewServer(service.Config{Workers: 2})
	defer svc.Close()
	h := svc.Handler()
	body, err := json.Marshal(benchWorkload)
	if err != nil {
		b.Fatal(err)
	}
	do := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	if rec := do(); rec.Code != http.StatusOK { // prime the cache
		b.Fatalf("prime: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := do(); rec.Header().Get("X-Cache") != "HIT" {
		b.Fatalf("second request not a hit: X-Cache=%q", rec.Header().Get("X-Cache"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := do(); rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.StopTimer()
	st := svc.CacheStats()
	b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "cache-hit-ratio")
}

// BenchmarkCoreRunMany8 measures the batch entry point on an 8-way
// dataset-size sweep sharing one compiled window (the compile-once,
// simulate-many shape sweeps hit).
func BenchmarkCoreRunMany8(b *testing.B) {
	ws := make([]core.Workload, 8)
	for i := range ws {
		ws[i] = benchWorkload
		ws[i].Images = int64(16*1024) << (i % 4)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ResetCaches()
		if _, err := core.RunMany(ctx, ws); err != nil {
			b.Fatal(err)
		}
	}
}
