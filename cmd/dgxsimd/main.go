// Command dgxsimd serves the simulator over HTTP/JSON: one-shot
// simulations, P2P-vs-NCCL comparisons, parallel what-if sweeps over
// configuration grids (buffered or streamed as NDJSON), and a Pareto
// configuration optimizer, backed by a bounded worker pool and a
// deterministic result cache (see internal/service).
//
// Usage:
//
//	dgxsimd -addr :8080 -workers 8 -queue-depth 16 -cache 1024 -timeout 60s -pprof
//
//	curl -s localhost:8080/v1/                    # machine-readable API index
//	curl -s localhost:8080/v1/simulate -d '{"Model":"resnet","GPUs":4,"Batch":32}'
//	curl -s localhost:8080/v1/simulate -d '{"Model":"alexnet","GPUs":8,"Batch":16,"faults":{"failedLinks":[{"a":0,"b":1}]}}'
//	curl -s localhost:8080/v1/sweep -d '{"Models":["lenet","alexnet"],"GPUs":[1,2,4,8],"Batches":[16],"Methods":["p2p","nccl"]}'
//	curl -s -H 'Accept: application/x-ndjson' localhost:8080/v1/sweep \
//	  -d '{"Base":{"Model":"lenet","Batch":16},"GPUs":[1,2,4,8]}'     # one record per cell + summary
//	curl -s localhost:8080/v1/optimize -d '{"base":{"Model":"resnet","Batch":32},"objective":"min_epoch_time"}'
//	curl -s localhost:8080/v1/validate -d '{"Model":"resnet","GPUs":16,"Batch":32}'
//	curl -s localhost:8080/v1/cluster/simulate -d '{"nodes":[{"count":4}],"mix":{"jobs":500},"policy":"frag-aware"}'
//	curl -s localhost:8080/metrics
//
// A sweep requested with Accept: application/x-ndjson streams one JSON
// record per grid cell in grid order (bounded memory — a 10k-cell sweep
// never buffers the grid) and ends with a {"summary": ...} record;
// /v1/optimize searches GPUs x batch x method x faults around a base
// workload and returns the Pareto frontier of the objective
// (min_epoch_time or max_throughput_per_gpu, optional memoryCapGiB)
// against GPU cost. Every error, on every endpoint, is one JSON
// envelope {"error": {"code", "message", "retryable"}} with a stable
// machine-readable code.
//
// /v1/cluster/simulate runs a fleet of simulated DGX-1 nodes (each
// optionally fault-degraded) against a trace of job arrivals in virtual
// time and returns JCT/queueing distributions, utilization, and makespan
// (see internal/cluster); placement policies: first-fit, best-fit,
// frag-aware; queue disciplines: fifo, sjf.
//
// Observability: every response carries an X-Request-ID; a request body
// with "trace": true retains the simulator's stage intervals, and
// GET /v1/trace/{id} replays that request's timeline (service spans +
// FP/BP/WU stages) as a Chrome trace. Each request also emits one JSON
// access-log line on stderr (disable with -access-log=false), and -pprof
// mounts net/http/pprof under /debug/pprof/.
//
// Request and response bodies carry a schemaVersion field (currently 1);
// requests may omit it, and any other value is rejected with 400.
//
// Overload: admission to the worker pool is bounded by -queue-depth.
// When the queue is full a new simulation is shed with 429 + Retry-After
// (a deadline that expires while still queued sheds with 503) instead of
// blocking, identical concurrent misses coalesce onto one in-flight
// simulation, and /metrics exposes dgxsimd_shed_total,
// dgxsimd_coalesced_total, and the admission-queue gauges. cmd/loadgen
// drives a flood to demonstrate the bounded behaviour.
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests finish
// (bounded by -drain), then the worker pool is released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/persist"
	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = NumCPU)")
		queue     = flag.Int("queue-depth", 0, "admission-queue depth before requests are shed with 429 (0 = one slot per worker)")
		cache     = flag.Int("cache", 0, "result-cache capacity in reports (0 = default 1024)")
		cacheDir  = flag.String("cache-dir", "", "persist cached responses to this directory: load on boot, write-through on miss (empty = memory only)")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-request simulation timeout")
		reqTO     = flag.Duration("request-timeout", 0, "total per-request deadline incl. queueing; expiry while queued sheds with 503 (0 = -timeout)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		traces    = flag.Int("trace-store", 0, "recent request traces retained for /v1/trace (0 = default 256)")
		accessLog = flag.Bool("access-log", true, "emit one JSON access-log line per request on stderr")
		pprofFlag = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	var logSink io.Writer
	if *accessLog {
		logSink = os.Stderr
	}
	var store *persist.Store
	if *cacheDir != "" {
		var err error
		store, err = persist.Open(*cacheDir, service.SchemaVersion, 0)
		if err != nil {
			fatal(err)
		}
		// Close after the server drains: write-through continues until the
		// last in-flight simulation stores its result, and Close flushes
		// the queue so a graceful shutdown loses nothing.
		defer store.Close()
	}
	svc := service.NewServer(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		Timeout:        *timeout,
		RequestTimeout: *reqTO,
		TraceStore:     *traces,
		AccessLog:      logSink,
		Persist:        store,
	})
	defer svc.Close()
	if store != nil {
		st := store.Stats()
		log.Printf("dgxsimd: cache snapshots at %s (loaded %d, skipped %d)", store.Dir(), st.Loaded, st.Skipped)
	}

	handler := svc.Handler()
	if *pprofFlag {
		// The profiler endpoints ride on the same listener, mounted
		// explicitly (importing net/http/pprof for its side effect would
		// pollute http.DefaultServeMux, which we do not serve).
		mux := http.NewServeMux()
		mux.Handle("/", svc.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slow-client hardening: bound header and body reads and reap
		// idle keep-alive connections. Response writes stay unbounded —
		// a sweep may legitimately simulate for the full -timeout before
		// its body goes out (the per-request simulation timeout bounds
		// that work instead). Bodies are additionally capped by the
		// service's MaxBytesReader (413 on overflow).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("dgxsimd: listening on %s (workers=%d)", *addr, svc.PoolStats().Workers)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	log.Printf("dgxsimd: shutting down (draining up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("dgxsimd: forced shutdown: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgxsimd:", err)
	os.Exit(1)
}
