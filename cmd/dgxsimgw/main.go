// Command dgxsimgw fronts a replicated dgxsimd fleet with cache-affinity
// routing (see internal/gateway). It normalizes each posted workload,
// computes its fingerprint through the same internal/core path the
// replicas key their caches with, and consistent-hashes it across the
// replica set — so repeats of a workload always land on the replica
// whose cache (memory, and disk when the replicas run -cache-dir) is
// already warm for it.
//
// Usage:
//
//	dgxsimd -addr :8081 -cache-dir /var/lib/dgxsim/a &
//	dgxsimd -addr :8082 -cache-dir /var/lib/dgxsim/b &
//	dgxsimgw -addr :8080 -replicas http://localhost:8081,http://localhost:8082
//
//	curl -s localhost:8080/v1/simulate -d '{"Model":"resnet","GPUs":4,"Batch":32}'
//	curl -s localhost:8080/metrics          # gateway routing + replica health
//	curl -s localhost:8080/healthz          # ok while >=1 replica is up
//
// Replicas are health-checked every -health-interval; a replica that
// sheds (429/503 + Retry-After) or is unreachable fails over once to the
// next ring member, and every other response — NDJSON sweep streams,
// error envelopes, traces — passes through verbatim. Each response
// carries X-Gw-Replica naming the replica that served it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		replicas = flag.String("replicas", "", "comma-separated dgxsimd base URLs (required)")
		interval = flag.Duration("health-interval", time.Second, "replica /healthz probe period")
		vnodes   = flag.Int("vnodes", 0, "consistent-hash ring points per replica (0 = 64)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Parse()

	var urls []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			urls = append(urls, r)
		}
	}
	if len(urls) == 0 {
		fatal(errors.New("-replicas is required (comma-separated dgxsimd base URLs)"))
	}

	gw, err := gateway.New(gateway.Config{
		Replicas:       urls,
		VNodes:         *vnodes,
		HealthInterval: *interval,
	})
	if err != nil {
		fatal(err)
	}
	defer gw.Close()

	srv := &http.Server{
		Addr:    *addr,
		Handler: gw.Handler(),
		// Bound inbound header/body reads; response writes stay unbounded
		// because proxied NDJSON streams legitimately run as long as the
		// replica's own simulation timeout.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("dgxsimgw: listening on %s, routing %d replicas", *addr, len(urls))
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	log.Printf("dgxsimgw: shutting down (draining up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("dgxsimgw: forced shutdown: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgxsimgw:", err)
	os.Exit(1)
}
