// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON baseline on stdout, so benchmark snapshots can be
// committed and diffed (`make bench-json` writes BENCH_<date>.json).
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkCoreRun' -benchmem . | benchjson -date 2026-08-06
//
// Only benchmark result lines are parsed; everything else (goos/pkg
// headers, PASS, logs) is carried into no field and ignored. Each line
//
//	BenchmarkCoreRunWarm-8  204933  5773 ns/op  3592 B/op  45 allocs/op
//
// becomes {"name":"CoreRunWarm","iterations":204933,"nsPerOp":5773,...};
// extra custom metrics (e.g. "0.95 cache-hit-ratio") land in "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  int64              `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64              `json:"allocsPerOp,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed file shape.
type Baseline struct {
	Date       string   `json:"date,omitempty"`
	Go         string   `json:"go,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	date := flag.String("date", "", "snapshot date stamped into the output")
	flag.Parse()

	base := Baseline{Date: *date}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu:"):
			base.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				base.Benchmarks = append(base.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one result line: a name, an iteration count, then
// value/unit pairs.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, r.NsPerOp > 0
}
