// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON baseline on stdout, so benchmark snapshots can be
// committed and diffed (`make bench-json` writes BENCH_<date>.json).
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkCoreRun' -benchmem . | benchjson -date 2026-08-06
//
// Only benchmark result lines are parsed; everything else (goos/pkg
// headers, PASS, logs) is carried into no field and ignored. Each line
//
//	BenchmarkCoreRunWarm-8  204933  5773 ns/op  3592 B/op  45 allocs/op
//
// becomes {"name":"CoreRunWarm","iterations":204933,"nsPerOp":5773,...};
// extra custom metrics (e.g. "0.95 cache-hit-ratio") land in "metrics".
//
// Gate mode (`-diff BASELINE.json -max-regress 25%`) compares the fresh
// run against a committed baseline instead of just converting it. The
// fresh JSON still goes to stdout (CI uploads it as an artifact); the
// verdict goes to stderr and the exit code. Run benchmarks with
// -count=3 or more: duplicate lines for one benchmark are folded to the
// best (minimum) ns/op and allocs/op, so scheduler noise on a shared
// runner can only make the gate pass, never fail, spuriously.
//
//	go test -run '^$' -bench . -benchmem -count=3 . |
//	    benchjson -diff BENCH_2026-08-08.json -max-regress 25%
//
// A benchmark present in the baseline but missing from the fresh run
// fails the gate (a silently deleted benchmark is a silently deleted
// floor); a new benchmark absent from the baseline passes with a
// warning (it gains a floor the next time the baseline is refreshed).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  int64              `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64              `json:"allocsPerOp,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed file shape.
type Baseline struct {
	Date       string   `json:"date,omitempty"`
	Go         string   `json:"go,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its edges injected, so the gate's verdicts are table-
// testable. It returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	date := fs.String("date", "", "snapshot date stamped into the output")
	diff := fs.String("diff", "", "baseline JSON to gate against (enables gate mode)")
	maxRegress := fs.String("max-regress", "10%", "max allowed regression vs the baseline, e.g. 25%")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fresh, err := parseBench(stdin, *date)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if len(fresh.Benchmarks) == 0 {
		// A broken -bench regexp or a compile failure upstream of the pipe
		// must not convert to a plausible-looking empty baseline — and in
		// gate mode an empty run would vacuously "not regress".
		fmt.Fprintln(stderr, "benchjson: no benchmark lines on stdin")
		return 1
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fresh); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if *diff == "" {
		return 0
	}

	threshold, err := parsePercent(*maxRegress)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	raw, err := os.ReadFile(*diff)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "benchjson: parse baseline %s: %v\n", *diff, err)
		return 1
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintf(stderr, "benchjson: baseline %s has no benchmarks\n", *diff)
		return 1
	}
	failures := gate(base, fresh, threshold, stderr)
	if failures > 0 {
		fmt.Fprintf(stderr, "benchjson: FAIL: %d benchmark(s) regressed beyond %.0f%% of %s\n",
			failures, threshold, *diff)
		return 1
	}
	fmt.Fprintf(stderr, "benchjson: ok: %d benchmark(s) within %.0f%% of %s\n",
		len(base.Benchmarks), threshold, *diff)
	return 0
}

// parseBench reads raw `go test -bench -benchmem` output and folds
// duplicate lines (from -count=N) into one best-of-N Result per
// benchmark: minimum ns/op, bytes/op, and allocs/op. The minimum is the
// right statistic for a gate — a loaded CI runner inflates individual
// runs but the best of three approaches the machine's true floor.
func parseBench(r io.Reader, date string) (Baseline, error) {
	base := Baseline{Date: date}
	best := make(map[string]*Result)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu:"):
			base.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if !ok {
				continue
			}
			prev, seen := best[res.Name]
			if !seen {
				r := res
				best[res.Name] = &r
				order = append(order, res.Name)
				continue
			}
			if res.NsPerOp < prev.NsPerOp {
				prev.NsPerOp = res.NsPerOp
				prev.Iterations = res.Iterations
			}
			if res.BytesPerOp < prev.BytesPerOp {
				prev.BytesPerOp = res.BytesPerOp
			}
			if res.AllocsPerOp < prev.AllocsPerOp {
				prev.AllocsPerOp = res.AllocsPerOp
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Baseline{}, err
	}
	for _, name := range order {
		base.Benchmarks = append(base.Benchmarks, *best[name])
	}
	return base, nil
}

// gate compares fresh against base, writing one line per verdict to w,
// and returns the number of failing benchmarks. A benchmark fails when
// its fresh ns/op or allocs/op exceeds the baseline by more than
// threshold percent, or when it is missing from the fresh run entirely.
func gate(base, fresh Baseline, threshold float64, w io.Writer) int {
	freshBy := make(map[string]Result, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		freshBy[r.Name] = r
	}
	baseNames := make(map[string]bool, len(base.Benchmarks))
	failures := 0
	for _, b := range base.Benchmarks {
		baseNames[b.Name] = true
		f, ok := freshBy[b.Name]
		if !ok {
			fmt.Fprintf(w, "benchjson: FAIL %s: present in baseline but missing from fresh run\n", b.Name)
			failures++
			continue
		}
		bad := false
		if reg := regression(b.NsPerOp, f.NsPerOp); reg > threshold {
			fmt.Fprintf(w, "benchjson: FAIL %s: ns/op %.0f -> %.0f (+%.1f%% > %.0f%%)\n",
				b.Name, b.NsPerOp, f.NsPerOp, reg, threshold)
			bad = true
		}
		if reg := regression(float64(b.AllocsPerOp), float64(f.AllocsPerOp)); reg > threshold {
			fmt.Fprintf(w, "benchjson: FAIL %s: allocs/op %d -> %d (+%.1f%% > %.0f%%)\n",
				b.Name, b.AllocsPerOp, f.AllocsPerOp, reg, threshold)
			bad = true
		}
		if bad {
			failures++
		} else {
			fmt.Fprintf(w, "benchjson: ok %s: ns/op %.0f -> %.0f, allocs/op %d -> %d\n",
				b.Name, b.NsPerOp, f.NsPerOp, b.AllocsPerOp, f.AllocsPerOp)
		}
	}
	var unknown []string
	for name := range freshBy {
		if !baseNames[name] {
			unknown = append(unknown, name)
		}
	}
	sort.Strings(unknown)
	for _, name := range unknown {
		fmt.Fprintf(w, "benchjson: warn %s: not in baseline (refresh the baseline to gate it)\n", name)
	}
	return failures
}

// regression returns the percent increase of fresh over base; zero or
// negative means no regression. A zero baseline only regresses if fresh
// is nonzero (0 -> 0 is a pass; 0 -> anything is reported as 100%).
func regression(base, fresh float64) float64 {
	if fresh <= base {
		return 0
	}
	if base == 0 {
		return 100
	}
	return 100 * (fresh - base) / base
}

// parsePercent parses "25%" or "25" into 25.0.
func parsePercent(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid -max-regress %q (want e.g. 25%%)", s)
	}
	return v, nil
}

// parseLine decodes one result line: a name, an iteration count, then
// value/unit pairs.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, r.NsPerOp > 0
}
