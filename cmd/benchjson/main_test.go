package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchOut builds plausible `go test -bench -benchmem` output from
// (name, ns/op, allocs/op) triples, with the usual surrounding noise.
func benchOut(lines ...string) string {
	return "goos: linux\ngoarch: amd64\npkg: repro\ncpu: Intel(R) Xeon(R) Processor @ 2.10GHz\n" +
		strings.Join(lines, "\n") + "\nPASS\nok  \trepro\t3.021s\n"
}

func writeBaseline(t *testing.T, b Baseline) string {
	t.Helper()
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConvertParsesBenchOutput(t *testing.T) {
	in := benchOut(
		"BenchmarkCoreRunWarm-8  	  204933	      5773 ns/op	    3592 B/op	      45 allocs/op",
		"BenchmarkServiceSweep-8 	     100	  11480764 ns/op	  533298 B/op	    4632 allocs/op",
	)
	var out, errb bytes.Buffer
	if code := run([]string{"-date", "2026-08-08"}, strings.NewReader(in), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var got Baseline
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Date != "2026-08-08" || got.CPU == "" || len(got.Benchmarks) != 2 {
		t.Fatalf("baseline = %+v", got)
	}
	if got.Benchmarks[0].Name != "CoreRunWarm" || got.Benchmarks[0].NsPerOp != 5773 || got.Benchmarks[0].AllocsPerOp != 45 {
		t.Errorf("first result = %+v", got.Benchmarks[0])
	}
}

// TestConvertEmptyInputFails pins the zero-results guard: a broken
// -bench regexp upstream of the pipe must exit non-zero with a clear
// message, not write {"benchmarks":null} and succeed.
func TestConvertEmptyInputFails(t *testing.T) {
	for _, in := range []string{"", "PASS\nok  \trepro\t0.001s\n"} {
		var out, errb bytes.Buffer
		if code := run(nil, strings.NewReader(in), &out, &errb); code == 0 {
			t.Errorf("input %q: exit 0, want non-zero", in)
		} else if !strings.Contains(errb.String(), "no benchmark lines") {
			t.Errorf("input %q: stderr %q lacks a clear message", in, errb.String())
		}
	}
}

// TestBestOfN pins -count=3 folding: duplicate lines for one benchmark
// reduce to the minimum ns/op and allocs/op, so a noisy run can only
// help the gate, never hurt it.
func TestBestOfN(t *testing.T) {
	in := benchOut(
		"BenchmarkCoreRunWarm-8  	  200000	      6100 ns/op	    3600 B/op	      47 allocs/op",
		"BenchmarkCoreRunWarm-8  	  210000	      5500 ns/op	    3592 B/op	      45 allocs/op",
		"BenchmarkCoreRunWarm-8  	  205000	      5900 ns/op	    3595 B/op	      46 allocs/op",
	)
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader(in), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var got Baseline
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 {
		t.Fatalf("folded to %d results, want 1", len(got.Benchmarks))
	}
	r := got.Benchmarks[0]
	if r.NsPerOp != 5500 || r.AllocsPerOp != 45 || r.BytesPerOp != 3592 {
		t.Errorf("best-of-3 = %+v, want ns/op 5500, allocs 45, bytes 3592", r)
	}
}

// TestGateVerdicts is the satellite's table: each case feeds a fresh
// run against a baseline through the full CLI and checks the exit code
// and the diagnostic naming the benchmark.
func TestGateVerdicts(t *testing.T) {
	base := Baseline{Benchmarks: []Result{
		{Name: "CoreRunWarm", NsPerOp: 5000, AllocsPerOp: 40},
	}}
	cases := []struct {
		name     string
		fresh    []string
		regress  string
		wantCode int
		wantMsg  string
	}{
		{
			name:     "improvement passes",
			fresh:    []string{"BenchmarkCoreRunWarm-8  	  300000	      4000 ns/op	    3000 B/op	      30 allocs/op"},
			regress:  "10%",
			wantCode: 0,
			wantMsg:  "ok CoreRunWarm",
		},
		{
			name:     "within threshold passes",
			fresh:    []string{"BenchmarkCoreRunWarm-8  	  300000	      5400 ns/op	    3000 B/op	      43 allocs/op"},
			regress:  "10%",
			wantCode: 0,
			wantMsg:  "ok CoreRunWarm",
		},
		{
			name:     "ns/op regression beyond threshold fails naming the benchmark",
			fresh:    []string{"BenchmarkCoreRunWarm-8  	  300000	      6000 ns/op	    3000 B/op	      40 allocs/op"},
			regress:  "10%",
			wantCode: 1,
			wantMsg:  "FAIL CoreRunWarm: ns/op",
		},
		{
			name:     "allocs/op regression beyond threshold fails naming the benchmark",
			fresh:    []string{"BenchmarkCoreRunWarm-8  	  300000	      5000 ns/op	    3000 B/op	      60 allocs/op"},
			regress:  "10%",
			wantCode: 1,
			wantMsg:  "FAIL CoreRunWarm: allocs/op",
		},
		{
			name:     "baseline benchmark missing from fresh output fails",
			fresh:    []string{"BenchmarkSomethingElse-8  	  300000	      100 ns/op	    0 B/op	      0 allocs/op"},
			regress:  "10%",
			wantCode: 1,
			wantMsg:  "FAIL CoreRunWarm: present in baseline but missing",
		},
		{
			name: "new benchmark absent from baseline passes with warning",
			fresh: []string{
				"BenchmarkCoreRunWarm-8  	  300000	      5000 ns/op	    3000 B/op	      40 allocs/op",
				"BenchmarkServiceCacheHit-8  	 1000000	      1500 ns/op	    700 B/op	      9 allocs/op",
			},
			regress:  "10%",
			wantCode: 0,
			wantMsg:  "warn ServiceCacheHit: not in baseline",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeBaseline(t, base)
			var out, errb bytes.Buffer
			code := run([]string{"-diff", path, "-max-regress", tc.regress},
				strings.NewReader(benchOut(tc.fresh...)), &out, &errb)
			if code != tc.wantCode {
				t.Errorf("exit %d, want %d; stderr: %s", code, tc.wantCode, errb.String())
			}
			if !strings.Contains(errb.String(), tc.wantMsg) {
				t.Errorf("stderr %q does not contain %q", errb.String(), tc.wantMsg)
			}
			// The fresh JSON must reach stdout in gate mode regardless of the
			// verdict — CI uploads it as the run's artifact.
			var got Baseline
			if err := json.Unmarshal(out.Bytes(), &got); err != nil {
				t.Errorf("gate mode stdout is not a baseline: %v", err)
			}
		})
	}
}

// TestGateEmptyFreshFails pins that gate mode shares the zero-results
// guard: an empty fresh run must fail, not vacuously pass.
func TestGateEmptyFreshFails(t *testing.T) {
	path := writeBaseline(t, Baseline{Benchmarks: []Result{{Name: "CoreRunWarm", NsPerOp: 5000}}})
	var out, errb bytes.Buffer
	if code := run([]string{"-diff", path}, strings.NewReader("PASS\n"), &out, &errb); code == 0 {
		t.Fatal("empty fresh run passed the gate")
	}
	if !strings.Contains(errb.String(), "no benchmark lines") {
		t.Errorf("stderr %q lacks the zero-results message", errb.String())
	}
}

func TestGateBadFlags(t *testing.T) {
	path := writeBaseline(t, Baseline{Benchmarks: []Result{{Name: "X", NsPerOp: 1}}})
	in := benchOut("BenchmarkX-8  	  1000	      1 ns/op	    0 B/op	      0 allocs/op")
	var out, errb bytes.Buffer
	if code := run([]string{"-diff", path, "-max-regress", "abc"},
		strings.NewReader(in), &out, &errb); code == 0 {
		t.Error("invalid -max-regress accepted")
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-diff", filepath.Join(t.TempDir(), "missing.json")},
		strings.NewReader(in), &out, &errb); code == 0 {
		t.Error("missing baseline file accepted")
	}
}

func TestParsePercent(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"25%", 25, true}, {"25", 25, true}, {" 10% ", 10, true},
		{"0%", 0, true}, {"-5%", 0, false}, {"pct", 0, false},
	} {
		got, err := parsePercent(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("parsePercent(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
