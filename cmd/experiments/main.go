// Command experiments regenerates the paper's tables and figures from the
// simulator. Without -run it executes everything in paper order.
//
// Usage:
//
//	experiments                 # everything (full 256K-image sweeps)
//	experiments -run fig3       # one artifact
//	experiments -list
//	experiments -images 65536   # faster, shape-preserving sweep
//	experiments -csv out/       # additionally write each table as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment ids (empty = all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		images  = flag.Int64("images", 0, "dataset images (0 = paper's 256K)")
		reps    = flag.Int("reps", 5, "repetitions per configuration")
		seed    = flag.Int64("seed", 1, "jitter seed")
		workers = flag.Int("workers", 0, "parallel sweep workers (0 = NumCPU, 1 = sequential)")
		csvDir  = flag.String("csv", "", "directory to also write tables as CSV")
		md      = flag.Bool("md", false, "print tables as Markdown instead of aligned text")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
			fmt.Printf("%-14s   %s\n", "", e.Desc)
		}
		return
	}

	opt := experiments.Options{Repetitions: *reps, Seed: *seed, Images: *images, Workers: *workers}
	selected := experiments.All()
	if *run != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(opt)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("== %s: %s (generated in %v) ==\n\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond))
		for i, t := range tables {
			if *md {
				if err := t.WriteMarkdown(os.Stdout); err != nil {
					fatal(err)
				}
			} else {
				fmt.Println(t.String())
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, fmt.Sprintf("%s_%d.csv", e.ID, i), t); err != nil {
					fatal(err)
				}
			}
		}
	}
}

func writeCSV(dir, name string, t *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
