// Command dgxsim simulates one epoch of data-parallel DNN training on the
// modeled Volta DGX-1 and prints the paper-style measurements: epoch time,
// FP+BP/WU breakdown, memory usage, and the nvprof-style profile summary.
//
// Usage:
//
//	dgxsim -model resnet -gpus 4 -batch 32 -method nccl
//	dgxsim -model inception-v3 -gpus 8 -batch 16 -method p2p -weak
//	dgxsim -model lenet -gpus 4 -batch 16 -compare
//	dgxsim -model resnet -gpus 16 -batch 32 -hardware dgx2 -protocol auto
//	dgxsim -model resnet -gpus 8 -batch 32 -faults '{"failedLinks":[{"a":0,"b":1}]}'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/faults"
)

func main() {
	var (
		model      = flag.String("model", "googlenet", "model name: "+strings.Join(core.Models(), ", "))
		gpus       = flag.Int("gpus", 4, "GPU count (1..the machine's capacity)")
		batch      = flag.Int("batch", 16, "per-GPU batch size")
		method     = flag.String("method", "nccl", "communication method: p2p or nccl")
		hardware   = flag.String("hardware", "", "machine generation: "+strings.Join(core.HardwareNames(), ", ")+" (default dgx1)")
		protocol   = flag.String("protocol", "", "NCCL transfer protocol: "+strings.Join(core.Protocols(), ", ")+" (default simple)")
		images     = flag.Int64("images", 0, "images per epoch (0 = paper's 256K)")
		weak       = flag.Bool("weak", false, "weak scaling: dataset grows with GPU count")
		compare    = flag.Bool("compare", false, "run both methods and compare")
		noTC       = flag.Bool("no-tensor-cores", false, "disable tensor-core lowering")
		async      = flag.Bool("async", false, "asynchronous SGD (p2p only)")
		mp         = flag.Bool("model-parallel", false, "partition layers across GPUs instead of replicating")
		micro      = flag.Int("micro-batches", 0, "model-parallel pipeline depth (0 = 2x stages)")
		faultsJSON = flag.String("faults", "", `fault plan as JSON, e.g. '{"failedLinks":[{"a":0,"b":1}],"stragglers":[{"gpu":3,"slowdown":1.5}]}'`)
		profile    = flag.Bool("profile", false, "print the nvprof-style profile summary")
		layers     = flag.Int("layers", 0, "print the N most expensive layers (0 = off)")
		asJSON     = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	flag.Parse()

	w := core.Workload{
		Model:              *model,
		GPUs:               *gpus,
		Batch:              *batch,
		Method:             core.Method(*method),
		Images:             *images,
		Hardware:           *hardware,
		Protocol:           *protocol,
		WeakScaling:        *weak,
		DisableTensorCores: *noTC,
		Async:              *async,
		ModelParallel:      *mp,
		MicroBatches:       *micro,
	}
	if *faultsJSON != "" {
		// Strict decode, mirroring the service's schema discipline: an
		// unknown or misspelled field is an error, not a silently healthy
		// fabric.
		dec := json.NewDecoder(strings.NewReader(*faultsJSON))
		dec.DisallowUnknownFields()
		var p faults.Plan
		if err := dec.Decode(&p); err != nil {
			fatal(fmt.Errorf("-faults: %w", err))
		}
		w.Faults = &p
	}
	// The service (cmd/dgxsimd) runs the same check, so the CLI and the
	// API reject a bad configuration with identical error text.
	if err := w.Validate(); err != nil {
		fatal(err)
	}
	if w.Faults != nil && !*asJSON {
		fmt.Printf("fault plan: %s\n", w.Faults.Normalize())
	}

	if *compare {
		reps, err := core.Compare(w)
		if err != nil {
			fatal(err)
		}
		var p, n *core.Report
		for _, mr := range reps {
			switch mr.Method {
			case core.P2P:
				p = mr.Report
			case core.NCCL:
				n = mr.Report
			}
		}
		fmt.Println(p.Summary())
		fmt.Println(n.Summary())
		ratio := p.EpochTime.Seconds() / n.EpochTime.Seconds()
		switch {
		case ratio > 1.005:
			fmt.Printf("NCCL is %.2fx faster than P2P for this configuration\n", ratio)
		case ratio < 0.995:
			fmt.Printf("P2P is %.2fx faster than NCCL for this configuration\n", 1/ratio)
		default:
			fmt.Println("the two methods are equivalent for this configuration")
		}
		return
	}

	r, err := core.Run(w)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		if err := r.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Println(r.Summary())
	e := r.Memory
	fmt.Printf("memory: pre-training %.2f GiB; training GPU0 %.2f GiB, GPUx %.2f GiB (+%.1f%% on GPU0)\n",
		e.PreTraining.GiB(), e.Root().GiB(), e.Worker().GiB(), e.RootPremiumPercent())
	if *profile {
		fmt.Println()
		fmt.Print(r.Profile.Summary())
	}
	if *layers > 0 {
		stats, err := core.LayerProfile(*model, *batch)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ntop %d layers by FP+BP time (per mini-batch):\n", *layers)
		fmt.Print(dnn.FormatLayerTable(dnn.TopLayers(stats, *layers)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgxsim:", err)
	os.Exit(1)
}
