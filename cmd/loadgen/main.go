// Command loadgen floods a running dgxsimd with concurrent simulation
// requests and reports how the daemon held up: status-code mix (200s,
// 429/503 sheds, anything else), cache dispositions (hit / miss /
// coalesced from X-Cache), latency percentiles, and whether any request
// failed at the transport level. It is the overload-protection
// demonstrator: pointed at a daemon with a small -queue-depth and driven
// at 10x its worker count, a healthy run shows every request answered —
// a bounded-latency mix of 200s and Retry-After sheds — and zero
// process-level failures.
//
// Usage:
//
//	dgxsimd -addr :8080 -workers 2 -queue-depth 2 &
//	loadgen -addr http://localhost:8080 -c 40 -n 200
//	loadgen -addr http://localhost:8080 -c 40 -n 200 -distinct
//	loadgen -addr http://localhost:8081,http://localhost:8082 -c 40 -n 400
//
// By default every request carries the same workload, so the flood also
// exercises request coalescing (expect one miss, a burst of coalesced,
// then hits). -distinct gives each request its own batch size instead,
// forcing every one through admission control.
//
// -addr accepts a comma-separated target list; requests round-robin
// across the targets by request index. Pointing the list at the replicas
// directly measures raw aggregate capacity (each replica warms its own
// cache); pointing it at a single dgxsimgw measures the fleet behind
// affinity routing — the comparison EXPERIMENTS.md records.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type result struct {
	status  int    // 0 = transport error
	disp    string // X-Cache header
	latency time.Duration
	err     error
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "target base URL(s), comma-separated (dgxsimd replicas or a dgxsimgw)")
		conc     = flag.Int("c", 40, "concurrent clients")
		total    = flag.Int("n", 200, "total requests")
		model    = flag.String("model", "alexnet", "workload model(s), comma-separated (requests cycle through them by index)")
		gpus     = flag.Int("gpus", 4, "workload GPU count")
		batch    = flag.Int("batch", 32, "workload per-GPU batch size")
		distinct = flag.Bool("distinct", false, "give every request a distinct workload (defeats cache and coalescing)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
	)
	flag.Parse()

	var targets []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			targets = append(targets, strings.TrimRight(a, "/"))
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -addr needs at least one target")
		os.Exit(2)
	}
	var models []string
	for _, m := range strings.Split(*model, ",") {
		if m = strings.TrimSpace(m); m != "" {
			models = append(models, m)
		}
	}
	if len(models) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -model needs at least one model")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	results := make([]result, *total)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < *total; i++ {
			next <- i
		}
		close(next)
	}()
	start := time.Now()
	for c := 0; c < *conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				b, g := *batch, *gpus
				if *distinct {
					// Vary (batch, gpus) per request so workloads
					// fingerprint differently — nothing caches or
					// coalesces — while batch stays in a band every zoo
					// model simulates without hitting the memory wall
					// (an OOM would be the workload's 500, not the
					// overload behaviour under test).
					b = *batch + (i>>3)%32
					g = 1 + i%8
				}
				results[i] = shoot(client, targets[i%len(targets)], models[i%len(models)], g, b)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(os.Stdout, results, elapsed)
	for _, r := range results {
		if r.status == 0 {
			os.Exit(1) // transport-level failure: the daemon did not hold
		}
	}
}

func shoot(client *http.Client, addr, model string, gpus, batch int) result {
	body, _ := json.Marshal(map[string]any{"Model": model, "GPUs": gpus, "Batch": batch})
	start := time.Now()
	resp, err := client.Post(addr+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		return result{err: err, latency: time.Since(start)}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return result{status: resp.StatusCode, disp: resp.Header.Get("X-Cache"), latency: time.Since(start)}
}

func report(w io.Writer, results []result, elapsed time.Duration) {
	statuses := map[int]int{}
	disps := map[string]int{}
	lats := make([]time.Duration, 0, len(results))
	for _, r := range results {
		statuses[r.status]++
		if r.status == http.StatusOK {
			disps[r.disp]++
		}
		lats = append(lats, r.latency)
		if r.err != nil {
			fmt.Fprintf(w, "transport error: %v\n", r.err)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	fmt.Fprintf(w, "%d requests in %v (%.1f req/s)\n",
		len(results), elapsed.Round(time.Millisecond), float64(len(results))/elapsed.Seconds())
	codes := make([]int, 0, len(statuses))
	for s := range statuses {
		codes = append(codes, s)
	}
	sort.Ints(codes)
	for _, s := range codes {
		label := "transport error"
		if s != 0 {
			label = fmt.Sprintf("HTTP %d", s)
		}
		fmt.Fprintf(w, "  %-16s %d\n", label, statuses[s])
	}
	if len(disps) > 0 {
		fmt.Fprintf(w, "dispositions of 200s:\n")
		names := make([]string, 0, len(disps))
		for d := range disps {
			names = append(names, d)
		}
		sort.Strings(names)
		for _, d := range names {
			fmt.Fprintf(w, "  %-16s %d\n", d, disps[d])
		}
	}
	fmt.Fprintf(w, "latency p50=%v p90=%v p99=%v max=%v\n",
		pct(lats, 0.50), pct(lats, 0.90), pct(lats, 0.99), lats[len(lats)-1].Round(time.Millisecond))
	shed := statuses[http.StatusTooManyRequests] + statuses[http.StatusServiceUnavailable]
	fmt.Fprintf(w, "shed %d/%d (%.0f%%), transport failures %d\n",
		shed, len(results), 100*float64(shed)/float64(len(results)), statuses[0])
}

// pct returns the q-th latency by nearest rank over the sorted slice.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Millisecond)
}
