// Command topo prints the modeled DGX-1 interconnect (the paper's
// Figure 2): nodes, links, NVLink adjacency, routed bandwidth matrix, and
// — with -routes — the path every GPU pair takes under each policy.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/topology"
	"repro/internal/units"
)

func main() {
	routes := flag.Bool("routes", false, "print routed paths for every GPU pair")
	flag.Parse()

	top := topology.DGX1()
	if err := top.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "topo:", err)
		os.Exit(1)
	}
	fmt.Print(top.Describe())

	m, err := top.BandwidthMatrix(topology.RouteStagedNVLink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topo:", err)
		os.Exit(1)
	}
	fmt.Println("Routed bottleneck bandwidth (staged NVLink policy):")
	fmt.Print("      ")
	for _, g := range top.GPUs() {
		fmt.Printf("%8s", fmt.Sprintf("G%d", g))
	}
	fmt.Println()
	for i, a := range top.GPUs() {
		fmt.Printf("  %-4s", fmt.Sprintf("G%d", a))
		for j := range top.GPUs() {
			if i == j {
				fmt.Printf("%8s", "-")
			} else {
				fmt.Printf("%7.0fG", float64(m[i][j])/float64(units.GBPerSec))
			}
		}
		fmt.Println()
	}

	if *routes {
		fmt.Println("\nRoutes (staged NVLink | PCIe fallback):")
		for _, a := range top.GPUs() {
			for _, b := range top.GPUs() {
				if a == b {
					continue
				}
				nv, err := top.Route(a, b, topology.RouteStagedNVLink)
				if err != nil {
					fmt.Fprintln(os.Stderr, "topo:", err)
					os.Exit(1)
				}
				pc, err := top.Route(a, b, topology.RoutePCIeFallback)
				if err != nil {
					fmt.Fprintln(os.Stderr, "topo:", err)
					os.Exit(1)
				}
				fmt.Printf("  %d->%d: %-40s | %s\n", a, b, nv, pc)
			}
		}
	}
}
