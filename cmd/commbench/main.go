// Command commbench is the simulator's nccl-tests analog: it sweeps
// message sizes for the WU-stage primitives (all-reduce, broadcast) under
// both communication methods and prints algorithm/bus bandwidth, plus the
// P2P-to-NCCL crossover size per GPU count.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/commbench"
	"repro/internal/units"
)

func main() {
	var (
		op   = flag.String("op", "allreduce", "operation: allreduce or broadcast")
		gpus = flag.Int("gpus", 8, "GPU count (2..8)")
	)
	flag.Parse()

	sizes := commbench.DefaultSizes()
	pts, err := commbench.Sweep(commbench.Op(*op), *gpus, sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "commbench:", err)
		os.Exit(1)
	}
	fmt.Printf("%s, %d GPUs (modeled DGX-1)\n", *op, *gpus)
	fmt.Printf("%-10s %-8s %-14s %-14s %s\n", "size", "method", "time", "algbw", "busbw")
	for _, p := range pts {
		fmt.Printf("%-10v %-8s %-14v %-14v %v\n", p.Size, p.Method, p.Time.Round(100), p.AlgBW, p.BusBW)
	}

	fmt.Println()
	for _, g := range []int{2, 4, 8} {
		cross, err := commbench.Crossover(g, sizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "commbench:", err)
			os.Exit(1)
		}
		if cross == 0 {
			fmt.Printf("%d GPUs: P2P wins at every swept size\n", g)
			continue
		}
		fmt.Printf("%d GPUs: NCCL all-reduce overtakes P2P at %v (%.1fM parameters)\n",
			g, cross, float64(cross/units.Float32Size)/1e6)
	}
}
