// Command trace exports a Chrome-trace timeline (the paper's Figure 1) of
// the first simulated iterations of one training configuration. Load the
// output in chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	var (
		model  = flag.String("model", "googlenet", "model name")
		gpus   = flag.Int("gpus", 4, "GPU count")
		batch  = flag.Int("batch", 16, "per-GPU batch size")
		method = flag.String("method", "nccl", "communication method")
		out    = flag.String("o", "trace.json", "output file")
		cap    = flag.Int("max-intervals", 200000, "max retained intervals")
		ascii  = flag.Bool("ascii", false, "also draw the first iterations as a terminal Gantt chart")
		width  = flag.Int("width", 110, "ascii chart width in columns")
	)
	flag.Parse()

	r, err := core.Run(core.Workload{
		Model:          *model,
		GPUs:           *gpus,
		Batch:          *batch,
		Method:         core.Method(*method),
		TraceIntervals: *cap,
	})
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := r.Profile.ExportChromeTrace(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d intervals, %d dropped beyond cap)\n",
		*out, len(r.Profile.Intervals()), r.Profile.Dropped())
	fmt.Println(r.Summary())
	if *ascii {
		// Render the window that covers roughly the first two iterations
		// after setup.
		from := time.Duration(0)
		to := 3 * r.SteadyIter
		for _, iv := range r.Profile.Intervals() {
			if iv.End > from {
				// Find where activity begins to skip the idle setup gap.
				from = iv.Start
				break
			}
		}
		fmt.Println()
		fmt.Print(r.Profile.RenderASCII(from, from+to, *width))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace:", err)
	os.Exit(1)
}
