#!/usr/bin/env bash
# End-to-end smoke test for the dgxsimd daemon: build it, start it with
# pprof enabled, run one traced simulation, and assert that the
# observability surface (request id, /v1/trace, /metrics gauges and
# histograms, /debug/pprof) is actually serving. CI runs this after the
# unit tests; locally, `make smoke`.
set -euo pipefail

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/dgxsimd"
LOG="$(mktemp)"

cleanup() {
    [[ -n "${DAEMON_PID:-}" ]] && kill "$DAEMON_PID" 2>/dev/null || true
    [[ -n "${DAEMON_PID:-}" ]] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")" "$LOG"
}
trap cleanup EXIT

fail() {
    echo "smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2
    exit 1
}

echo "smoke: building dgxsimd"
go build -o "$BIN" ./cmd/dgxsimd

echo "smoke: starting daemon on $ADDR"
"$BIN" -addr "$ADDR" -pprof 2>"$LOG" &
DAEMON_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || fail "daemon never became healthy"

echo "smoke: traced simulate request"
HDRS="$(mktemp)"
BODY='{"Model":"lenet","GPUs":2,"Batch":16,"Images":4096,"trace":true}'
curl -fsS -D "$HDRS" -o /dev/null -X POST "$BASE/v1/simulate" -d "$BODY" \
    || fail "POST /v1/simulate failed"
REQ_ID="$(awk 'tolower($1) == "x-request-id:" {print $2}' "$HDRS" | tr -d '\r')"
rm -f "$HDRS"
[[ -n "$REQ_ID" ]] || fail "response missing X-Request-ID"
echo "smoke: request id $REQ_ID"

echo "smoke: fetching trace"
TRACE="$(curl -fsS "$BASE/v1/trace/$REQ_ID")" || fail "GET /v1/trace/$REQ_ID failed"
grep -q '"traceEvents"' <<<"$TRACE" || fail "trace is not a Chrome trace document"
grep -q '"simulate"' <<<"$TRACE" || fail "trace missing the simulate service span"
grep -q '"stage":"FP"' <<<"$TRACE" || fail "trace missing simulator FP stage intervals"

echo "smoke: checking /metrics"
METRICS="$(curl -fsS "$BASE/metrics")" || fail "GET /metrics failed"
for series in \
    dgxsimd_pool_queue_wait_seconds_total \
    dgxsimd_pool_panics_total \
    dgxsimd_request_duration_seconds_bucket \
    dgxsimd_inflight; do
    grep -q "$series" <<<"$METRICS" || fail "/metrics missing $series"
done

echo "smoke: checking pprof"
curl -fsS "$BASE/debug/pprof/cmdline" >/dev/null || fail "pprof not mounted"

echo "smoke: checking access log"
grep -q "\"id\":\"$REQ_ID\"" "$LOG" || fail "access log missing request $REQ_ID"

echo "smoke: PASS"
