#!/usr/bin/env bash
# End-to-end smoke test for the dgxsimd daemon: build it, start it with
# pprof enabled, run one traced simulation, and assert that the
# observability surface (request id, /v1/trace, /metrics gauges and
# histograms, /debug/pprof) is actually serving. CI runs this after the
# unit tests; locally, `make smoke`.
set -euo pipefail

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/dgxsimd"
LOG="$(mktemp)"

cleanup() {
    [[ -n "${DAEMON_PID:-}" ]] && kill "$DAEMON_PID" 2>/dev/null || true
    [[ -n "${DAEMON_PID:-}" ]] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")" "$LOG"
}
trap cleanup EXIT

fail() {
    echo "smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2
    exit 1
}

echo "smoke: building dgxsimd"
go build -o "$BIN" ./cmd/dgxsimd

echo "smoke: starting daemon on $ADDR"
"$BIN" -addr "$ADDR" -pprof 2>"$LOG" &
DAEMON_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || fail "daemon never became healthy"

echo "smoke: traced simulate request"
HDRS="$(mktemp)"
BODY='{"Model":"lenet","GPUs":2,"Batch":16,"Images":4096,"trace":true}'
curl -fsS -D "$HDRS" -o /dev/null -X POST "$BASE/v1/simulate" -d "$BODY" \
    || fail "POST /v1/simulate failed"
REQ_ID="$(awk 'tolower($1) == "x-request-id:" {print $2}' "$HDRS" | tr -d '\r')"
rm -f "$HDRS"
[[ -n "$REQ_ID" ]] || fail "response missing X-Request-ID"
echo "smoke: request id $REQ_ID"

echo "smoke: fetching trace"
TRACE="$(curl -fsS "$BASE/v1/trace/$REQ_ID")" || fail "GET /v1/trace/$REQ_ID failed"
grep -q '"traceEvents"' <<<"$TRACE" || fail "trace is not a Chrome trace document"
grep -q '"simulate"' <<<"$TRACE" || fail "trace missing the simulate service span"
grep -q '"stage":"FP"' <<<"$TRACE" || fail "trace missing simulator FP stage intervals"

echo "smoke: checking /metrics"
METRICS="$(curl -fsS "$BASE/metrics")" || fail "GET /metrics failed"
for series in \
    dgxsimd_pool_queue_wait_seconds_total \
    dgxsimd_pool_panics_total \
    dgxsimd_request_duration_seconds_bucket \
    dgxsimd_shed_total \
    dgxsimd_coalesced_total \
    dgxsimd_admission_queue_depth \
    dgxsimd_admission_queue_capacity \
    dgxsimd_sweep_streams_total \
    dgxsimd_sweep_streamed_cells_total \
    dgxsimd_compile_windows_total \
    dgxsimd_inflight; do
    grep -q "$series" <<<"$METRICS" || fail "/metrics missing $series"
done

echo "smoke: API index"
INDEX="$(curl -fsS "$BASE/v1/")" || fail "GET /v1/ failed"
grep -q '"/v1/optimize"' <<<"$INDEX" || fail "index missing /v1/optimize"
grep -q 'application/x-ndjson' <<<"$INDEX" || fail "index does not advertise NDJSON sweeps"

echo "smoke: streaming sweep (NDJSON)"
SWEEP_BODY='{"Base":{"Model":"lenet","Batch":16,"Images":4096},"GPUs":[1,2],"Methods":["nccl"]}'
NDJSON="$(curl -fsS -X POST -H 'Accept: application/x-ndjson' "$BASE/v1/sweep" -d "$SWEEP_BODY")" \
    || fail "POST /v1/sweep (NDJSON) failed"
RECORDS="$(grep -c . <<<"$NDJSON")"
[[ "$RECORDS" -ge 2 ]] || fail "NDJSON stream returned $RECORDS records, want >= 2"
tail -n 1 <<<"$NDJSON" | grep -q '"summary"' || fail "stream missing the trailing summary record"
head -n 1 <<<"$NDJSON" | grep -q '"workload"' || fail "first stream record is not a cell report"

echo "smoke: optimizer"
OPT_BODY='{"base":{"Model":"lenet","Batch":16,"Images":4096},"objective":"min_epoch_time","space":{"gpus":[1,2,4],"methods":["nccl"]}}'
OPT="$(curl -fsS -X POST "$BASE/v1/optimize" -d "$OPT_BODY")" || fail "POST /v1/optimize failed"
grep -q '"frontier"' <<<"$OPT" || fail "optimize response missing the frontier"
grep -q '"fingerprint"' <<<"$OPT" || fail "optimize frontier missing per-point provenance"

echo "smoke: error envelope"
ENVELOPE="$(curl -s "$BASE/v1/bogus")"
grep -q '"code":"not_found"' <<<"$ENVELOPE" || fail "unknown /v1 path did not answer with the error envelope"

echo "smoke: fleet simulation request"
CLUSTER_BODY='{
  "nodes": [{"count": 2}],
  "jobs": [
    {"model": "lenet", "gpus": 1, "batch": 16, "images": 4096, "arrivalNs": 0},
    {"model": "lenet", "gpus": 1, "batch": 16, "images": 4096, "arrivalNs": 0},
    {"model": "lenet", "gpus": 4, "batch": 16, "images": 4096, "arrivalNs": 1000000000},
    {"model": "lenet", "gpus": 8, "batch": 16, "images": 4096, "arrivalNs": 2000000000},
    {"model": "lenet", "gpus": 1, "batch": 16, "images": 4096, "arrivalNs": 2000000000, "repeats": 3}
  ]
}'
CLUSTER="$(curl -fsS -X POST "$BASE/v1/cluster/simulate" -d "$CLUSTER_BODY")" \
    || fail "POST /v1/cluster/simulate failed"
grep -q '"jct"' <<<"$CLUSTER" || fail "cluster response missing the JCT block"
grep -q '"makespanNs"' <<<"$CLUSTER" || fail "cluster response missing makespan"
grep -q '"perNode"' <<<"$CLUSTER" || fail "cluster response missing per-node stats"
CLUSTER_METRICS="$(curl -fsS "$BASE/metrics")" || fail "GET /metrics after cluster failed"
grep -q 'dgxsimd_cluster_jobs_total 5' <<<"$CLUSTER_METRICS" \
    || fail "dgxsimd_cluster_jobs_total did not count the fleet's jobs"
grep -q 'dgxsimd_cluster_sim_seconds_count 1' <<<"$CLUSTER_METRICS" \
    || fail "dgxsimd_cluster_sim_seconds histogram did not observe the run"

echo "smoke: checking pprof"
curl -fsS "$BASE/debug/pprof/cmdline" >/dev/null || fail "pprof not mounted"

echo "smoke: checking access log"
grep -q "\"id\":\"$REQ_ID\"" "$LOG" || fail "access log missing request $REQ_ID"

echo "smoke: shed-path probe (tiny admission queue, concurrent flood)"
SHED_ADDR="${SMOKE_SHED_ADDR:-127.0.0.1:18081}"
SHED_BASE="http://$SHED_ADDR"
SHED_LOG="$(mktemp)"
"$BIN" -addr "$SHED_ADDR" -workers 1 -queue-depth 1 2>"$SHED_LOG" &
SHED_PID=$!
shed_cleanup() {
    kill "$SHED_PID" 2>/dev/null || true
    wait "$SHED_PID" 2>/dev/null || true
    rm -f "$SHED_LOG"
}
for i in $(seq 1 50); do
    curl -fsS "$SHED_BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$SHED_PID" 2>/dev/null || { cat "$SHED_LOG" >&2; shed_cleanup; fail "shed daemon exited during startup"; }
    sleep 0.1
done

# Flood the 1-worker/1-slot daemon with distinct (uncacheable,
# uncoalesceable) heavy workloads; at least one must be refused with
# 429 + Retry-After rather than parked. Retry a few rounds in case the
# first simulations finish before the flood overlaps.
GOT_429=0
for round in $(seq 1 5); do
    FLOOD_DIR="$(mktemp -d)"
    CURL_PIDS=()
    for i in $(seq 1 20); do
        curl -s -o /dev/null -D "$FLOOD_DIR/$i.hdr" -w '%{http_code}' \
            -X POST "$SHED_BASE/v1/simulate" \
            -d "{\"Model\":\"inception-v3\",\"GPUs\":8,\"Batch\":$((16 + round * 20 + i))}" \
            >"$FLOOD_DIR/$i.code" &
        CURL_PIDS+=($!)
    done
    # Wait for the flood only — a bare `wait` would also wait on the
    # daemons themselves.
    wait "${CURL_PIDS[@]}"
    for i in $(seq 1 20); do
        CODE="$(cat "$FLOOD_DIR/$i.code")"
        case "$CODE" in
        429)
            grep -qi '^retry-after:' "$FLOOD_DIR/$i.hdr" \
                || { rm -rf "$FLOOD_DIR"; shed_cleanup; fail "429 response missing Retry-After"; }
            GOT_429=1
            ;;
        200 | 503) ;;
        *)
            # Every request must be answered with a real status, never
            # dropped or crashed out.
            rm -rf "$FLOOD_DIR"; shed_cleanup; fail "unexpected status $CODE under flood"
            ;;
        esac
    done
    rm -rf "$FLOOD_DIR"
    [[ "$GOT_429" == 1 ]] && break
done
[[ "$GOT_429" == 1 ]] || { shed_cleanup; fail "flood never produced a 429 shed"; }

# The daemon must be fully healthy after the flood.
curl -fsS "$SHED_BASE/healthz" >/dev/null || { shed_cleanup; fail "shed daemon unhealthy after flood"; }
SHED_METRICS="$(curl -fsS "$SHED_BASE/metrics")" || { shed_cleanup; fail "shed daemon /metrics failed"; }
grep -q 'dgxsimd_shed_total [1-9]' <<<"$SHED_METRICS" \
    || { shed_cleanup; fail "dgxsimd_shed_total did not count the flood"; }
shed_cleanup
echo "smoke: shed-path probe OK"

echo "smoke: gateway probe (2 replicas + dgxsimgw: affinity, then failover)"
GW_BIN="$(dirname "$BIN")/dgxsimgw"
go build -o "$GW_BIN" ./cmd/dgxsimgw
R1_ADDR="${SMOKE_R1_ADDR:-127.0.0.1:18082}"
R2_ADDR="${SMOKE_R2_ADDR:-127.0.0.1:18083}"
GW_ADDR="${SMOKE_GW_ADDR:-127.0.0.1:18084}"
GW_BASE="http://$GW_ADDR"
GW_LOG="$(mktemp)"
R1_LOG="$(mktemp)"
R2_LOG="$(mktemp)"
"$BIN" -addr "$R1_ADDR" 2>"$R1_LOG" &
R1_PID=$!
"$BIN" -addr "$R2_ADDR" 2>"$R2_LOG" &
R2_PID=$!
# Both replicas must be serving before the gateway boots: its first
# health round is synchronous, and racing it would start the probe
# cycle with a replica spuriously down.
for ADDR_UP in "$R1_ADDR" "$R2_ADDR"; do
    for i in $(seq 1 50); do
        curl -fsS "http://$ADDR_UP/healthz" >/dev/null 2>&1 && break
        sleep 0.1
    done
done
# A long probe interval keeps the failover assertion deterministic: the
# post-kill request must hit the dead owner (transport failure -> retry
# on the survivor), not find it already probed out of the ring.
"$GW_BIN" -addr "$GW_ADDR" -replicas "http://$R1_ADDR,http://$R2_ADDR" -health-interval 30s 2>"$GW_LOG" &
GW_PID=$!
gw_cleanup() {
    kill "$GW_PID" "$R1_PID" "$R2_PID" 2>/dev/null || true
    wait "$GW_PID" "$R1_PID" "$R2_PID" 2>/dev/null || true
    rm -f "$GW_LOG" "$R1_LOG" "$R2_LOG"
}
gw_fail() {
    echo "--- gateway log ---" >&2; cat "$GW_LOG" >&2
    echo "--- replica 1 log ---" >&2; cat "$R1_LOG" >&2
    echo "--- replica 2 log ---" >&2; cat "$R2_LOG" >&2
    gw_cleanup
    fail "$@"
}
for i in $(seq 1 50); do
    curl -fsS "$GW_BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$GW_PID" 2>/dev/null || gw_fail "gateway exited during startup"
    sleep 0.1
done
curl -fsS "$GW_BASE/healthz" >/dev/null || gw_fail "gateway never became healthy"

# Flood one fingerprint through the gateway: every request must land on
# the same replica (cache affinity), a MISS exactly once.
GW_WORKLOAD='{"Model":"resnet","GPUs":4,"Batch":32,"Images":4096}'
OWNER=""
for i in $(seq 1 8); do
    GW_HDRS="$(mktemp)"
    curl -fsS -D "$GW_HDRS" -o /dev/null -X POST "$GW_BASE/v1/simulate" -d "$GW_WORKLOAD" \
        || { rm -f "$GW_HDRS"; gw_fail "gateway simulate $i failed"; }
    REPLICA="$(awk 'tolower($1) == "x-gw-replica:" {print $2}' "$GW_HDRS" | tr -d '\r')"
    CACHE="$(awk 'tolower($1) == "x-cache:" {print $2}' "$GW_HDRS" | tr -d '\r')"
    rm -f "$GW_HDRS"
    [[ -n "$REPLICA" ]] || gw_fail "response $i missing X-Gw-Replica"
    if [[ "$i" == 1 ]]; then
        OWNER="$REPLICA"
        [[ "$CACHE" == "MISS" ]] || gw_fail "first request X-Cache=$CACHE, want MISS"
    else
        [[ "$REPLICA" == "$OWNER" ]] || gw_fail "request $i routed to $REPLICA, owner is $OWNER — affinity broken"
        [[ "$CACHE" == "HIT" ]] || gw_fail "repeat request $i X-Cache=$CACHE, want HIT"
    fi
done
echo "smoke: affinity OK ($OWNER owns the fingerprint)"

# Kill the owner; the same fingerprint must fail over to the survivor.
case "$OWNER" in
"http://$R1_ADDR") kill "$R1_PID"; wait "$R1_PID" 2>/dev/null || true; SURVIVOR="http://$R2_ADDR" ;;
"http://$R2_ADDR") kill "$R2_PID"; wait "$R2_PID" 2>/dev/null || true; SURVIVOR="http://$R1_ADDR" ;;
*) gw_fail "owner $OWNER is neither replica" ;;
esac
GW_HDRS="$(mktemp)"
curl -fsS -D "$GW_HDRS" -o /dev/null -X POST "$GW_BASE/v1/simulate" -d "$GW_WORKLOAD" \
    || { rm -f "$GW_HDRS"; gw_fail "post-kill simulate failed (no failover)"; }
REPLICA="$(awk 'tolower($1) == "x-gw-replica:" {print $2}' "$GW_HDRS" | tr -d '\r')"
rm -f "$GW_HDRS"
[[ "$REPLICA" == "$SURVIVOR" ]] || gw_fail "post-kill request served by $REPLICA, want survivor $SURVIVOR"

# The gateway's own metrics must record the routing: the dead owner down
# (marked by the transport failure, not a probe), the survivor up, and
# the failover counted.
GW_METRICS="$(curl -fsS "$GW_BASE/metrics")" || gw_fail "gateway /metrics failed"
grep -q "dgxsimgw_replica_up{replica=\"$OWNER\"} 0" <<<"$GW_METRICS" \
    || gw_fail "dead owner still up in gateway metrics"
grep -q "dgxsimgw_replica_up{replica=\"$SURVIVOR\"} 1" <<<"$GW_METRICS" \
    || gw_fail "survivor not up in gateway metrics"
grep -q "dgxsimgw_replica_requests_total{replica=\"$OWNER\"} [1-9]" <<<"$GW_METRICS" \
    || gw_fail "owner request counter did not count the flood"
grep -q 'dgxsimgw_failovers_total [1-9]' <<<"$GW_METRICS" \
    || gw_fail "failover was not counted"
gw_cleanup
echo "smoke: gateway probe OK"

echo "smoke: PASS"
